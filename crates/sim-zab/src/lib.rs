//! ZooKeeper/Zab-style baseline: the coarse-locked architecture whose
//! multi-core collapse motivates the paper (Figs. 1, 12, 13, 14).
//!
//! This is a *performance model* of ZooKeeper 3.3's leader pipeline, not
//! a correct Zab implementation (the correct replication library in this
//! workspace is `smr-core`). It reproduces the structural properties the
//! paper measures:
//!
//! * the leader thread ensemble of Fig. 1b — `CommitProcessor`,
//!   `LearnerHandler:1/2`, `ProcessThread`, `Sender:1/2`, `SyncThread`;
//! * clients connect to followers only (the paper's recommended
//!   configuration), which forward writes to the leader;
//! * the commit path crosses **coarse-grained locks** shared by the
//!   LearnerHandlers, the ProcessThread, and the CommitProcessor. Lock
//!   handoffs pay a cache-line-bouncing penalty that grows with the
//!   number of cores actively hammering the lock — the mechanism behind
//!   ZooKeeper's degradation beyond 4 cores (Fig. 12) and its >100%
//!   aggregate blocked time (Fig. 13b);
//! * a serial `SyncThread` (transaction log on a RAM disk, as in the
//!   paper's setup) and a serial `CommitProcessor`, the single-thread
//!   bottlenecks visible in Fig. 14b.
//!
//! # Examples
//!
//! ```
//! use smr_sim_zab::{run_zab_experiment, ZabConfig};
//!
//! let mut config = ZabConfig::new(3, 4);
//! config.clients = 120;
//! config.warmup_ns = 100_000_000;
//! config.duration_ns = 300_000_000;
//! let result = run_zab_experiment(&config);
//! assert!(result.throughput_rps > 0.0);
//! ```

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use smr_sim::{
    node_breakdown, Delivery, NetConfig, NodeBreakdown, NodeId, Port, Sim, SimMutex, SimNet,
    SimQueue,
};

/// Messages of the Zab model. Some fields exist to give frames their
/// realistic wire size and are not read by the receiving task.
#[derive(Debug, Clone)]
#[allow(dead_code)]
enum ZabMsg {
    /// Client write request (client → follower).
    Request { client: u64 },
    /// Forwarded request (follower → leader).
    Fwd { client: u64 },
    /// Leader proposal (leader → follower).
    Proposal { zxid: u64, client: u64 },
    /// Follower acknowledgement (follower → leader).
    Ack { zxid: u64 },
    /// Commit notification (leader → follower).
    Commit { zxid: u64, client: u64 },
    /// Reply (follower → client).
    Reply { client: u64 },
}

/// Configuration of one ZooKeeper-baseline run.
#[derive(Debug, Clone)]
pub struct ZabConfig {
    /// Ensemble size (the paper uses 3).
    pub n: usize,
    /// Cores per node.
    pub cores: usize,
    /// Closed-loop clients (1800 in the paper), spread over the
    /// followers.
    pub clients: usize,
    /// Client machines.
    pub client_nodes: usize,
    /// Request payload bytes (128 in the paper's setData workload).
    pub request_payload: usize,
    /// Virtual run length.
    pub duration_ns: u64,
    /// Ignored prefix.
    pub warmup_ns: u64,
    /// Random seed.
    pub seed: u64,
}

impl ZabConfig {
    /// The paper's setup at a given core count.
    pub fn new(n: usize, cores: usize) -> Self {
        ZabConfig {
            n,
            cores,
            clients: 1800,
            client_nodes: 6,
            request_payload: 128,
            duration_ns: 4_000_000_000,
            warmup_ns: 1_000_000_000,
            seed: 42,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct ZabResult {
    /// Requests per second over the measured window.
    pub throughput_rps: f64,
    /// Reports per replica; the leader is last (paper convention:
    /// "Replica 3" is the leader).
    pub replicas: Vec<NodeBreakdown>,
}

/// CPU costs of the model (ns, at the parapluie reference core). Roughly
/// 1.6x JPaxos' per-request work: ZooKeeper does more per request
/// (znode bookkeeping, txn framing) and the paper measured a lower
/// single-core throughput (~8K/s vs ~15K/s).
mod costs {
    /// Follower: decode client request + forward.
    pub const FOLLOWER_CLIENT_NS: u64 = 14_000;
    /// Follower: handle proposal (sync to RAM-disk log) and ack.
    pub const FOLLOWER_SYNC_NS: u64 = 12_000;
    /// Follower: apply commit + encode reply.
    pub const FOLLOWER_APPLY_NS: u64 = 12_000;
    /// LearnerHandler: read + decode one message from its follower.
    pub const LEARNER_RECV_NS: u64 = 5_000;
    /// ProcessThread: build the transaction.
    pub const PREP_NS: u64 = 9_000;
    /// SyncThread: leader-side log append (RAM disk).
    pub const SYNC_NS: u64 = 7_000;
    /// Sender: serialize + write one broadcast message.
    pub const SEND_NS: u64 = 5_000;
    /// CommitProcessor: commit bookkeeping + apply.
    pub const COMMIT_NS: u64 = 8_000;
    /// Hold time of the coarse locks per critical section.
    pub const LOCK_HOLD_NS: u64 = 4_000;
    /// Cache-line bounce per waiting thread per handoff, scaled by the
    /// number of cores beyond the first few — bouncing needs actual
    /// parallelism, and ZooKeeper's 7 leader threads fit 4 cores without
    /// tripping over each other (the paper's peak is at 4 cores).
    pub const BOUNCE_BASE_NS: u64 = 400;
}

fn client_port(idx: usize) -> Port {
    1_000 + idx as u32
}

/// Runs the ZooKeeper-baseline model and returns its metrics.
pub fn run_zab_experiment(cfg: &ZabConfig) -> ZabResult {
    assert!(
        cfg.n >= 3,
        "the model needs a leader and at least two followers"
    );
    let sim = Sim::new(cfg.seed);
    let ctx = sim.ctx();

    let replica_nodes: Vec<NodeId> = (0..cfg.n)
        .map(|i| sim.add_node(format!("zk-{i}"), cfg.cores, 1.0))
        .collect();
    let client_nodes: Vec<NodeId> = (0..cfg.client_nodes)
        .map(|i| sim.add_node(format!("clients-{i}"), 24, 1.0))
        .collect();
    let mut net_cfgs = vec![NetConfig::default(); cfg.n];
    net_cfgs.extend(vec![
        NetConfig {
            rss_channels: 4,
            ..NetConfig::default()
        };
        cfg.client_nodes
    ]);
    let net: SimNet<ZabMsg> = SimNet::new(&ctx, net_cfgs);

    let leader_node = replica_nodes[0];
    let followers: Vec<usize> = (1..cfg.n).collect();
    let measuring = Rc::new(Cell::new(false));
    let completed = Rc::new(Cell::new(0u64));

    // The coarse locks of the leader pipeline. The handoff penalty grows
    // with real parallelism: one core cannot bounce cache lines.
    let bounce = costs::BOUNCE_BASE_NS * (cfg.cores.min(10).saturating_sub(3) as u64);
    let global_lock = SimMutex::new(&ctx).with_handoff_penalty(bounce);
    let commit_lock = SimMutex::new(&ctx).with_handoff_penalty(bounce);

    // Leader-internal queues.
    let prep_q: SimQueue<u64> = SimQueue::new(&ctx, "PrepQueue", 1_000);
    let sync_q: SimQueue<(u64, u64)> = SimQueue::new(&ctx, "SyncQueue", 1_000);
    let committed_q: SimQueue<(u64, u64)> = SimQueue::new(&ctx, "CommittedQueue", 10_000);
    let send_qs: Vec<SimQueue<ZabMsg>> = followers
        .iter()
        .map(|f| SimQueue::new(&ctx, format!("ZkSend-{f}"), 10_000))
        .collect();

    // Shared leader state behind the locks.
    let pending_fwd: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
    let acks: Rc<RefCell<HashMap<u64, usize>>> = Rc::new(RefCell::new(HashMap::new()));
    let next_zxid = Rc::new(Cell::new(0u64));
    let majority = cfg.n / 2 + 1;

    // --- Leader: LearnerHandler per follower -----------------------------
    for (fi, &f) in followers.iter().enumerate() {
        let inbox: SimQueue<Delivery<ZabMsg>> =
            SimQueue::new(&ctx, format!("LearnerIn-{f}"), 1_000_000);
        net.bind(leader_node, 100 + f as u32, inbox.clone());
        let ctx2 = ctx.clone();
        let prep_q = prep_q.clone();
        let committed_q = committed_q.clone();
        let global_lock = global_lock.clone();
        let commit_lock = commit_lock.clone();
        let acks = Rc::clone(&acks);
        let pending = Rc::clone(&pending_fwd);
        ctx.spawn(
            leader_node,
            format!("LearnerHandler:{}", fi + 1),
            async move {
                while let Some(d) = inbox.pop().await {
                    match d.payload {
                        ZabMsg::Fwd { client } => {
                            ctx2.cpu(costs::LEARNER_RECV_NS).await;
                            {
                                // Coarse lock: submitted-request bookkeeping.
                                let _g = global_lock.lock().await;
                                ctx2.cpu(costs::LOCK_HOLD_NS).await;
                            }
                            if !prep_q.push(client).await {
                                return;
                            }
                        }
                        ZabMsg::Ack { zxid } => {
                            ctx2.cpu(costs::LEARNER_RECV_NS).await;
                            let decided = {
                                let _g = global_lock.lock().await;
                                ctx2.cpu(costs::LOCK_HOLD_NS).await;
                                let mut a = acks.borrow_mut();
                                let count = a.entry(zxid).or_insert(1); // self-ack
                                if *count == usize::MAX {
                                    false // already committed; late ack
                                } else {
                                    *count += 1;
                                    if *count >= majority {
                                        *count = usize::MAX;
                                        true
                                    } else {
                                        false
                                    }
                                }
                            };
                            if decided {
                                let Some(client) = pending.borrow_mut().remove(&zxid) else {
                                    continue;
                                };
                                // The CommitProcessor's queue is itself a
                                // synchronized structure in ZooKeeper 3.3.
                                {
                                    let _g = commit_lock.lock().await;
                                    ctx2.cpu(costs::LOCK_HOLD_NS).await;
                                }
                                if !committed_q.push((zxid, client)).await {
                                    return;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            },
        );
    }

    // --- Leader: ProcessThread (PrepRequestProcessor) ---------------------
    {
        let ctx2 = ctx.clone();
        let prep_q = prep_q.clone();
        let sync_q = sync_q.clone();
        let send_qs = send_qs.clone();
        let global_lock = global_lock.clone();
        let pending = Rc::clone(&pending_fwd);
        let next_zxid = Rc::clone(&next_zxid);
        ctx.spawn(leader_node, "ProcessThread", async move {
            while let Some(client) = prep_q.pop().await {
                ctx2.cpu(costs::PREP_NS).await;
                let zxid = {
                    let _g = global_lock.lock().await;
                    ctx2.cpu(costs::LOCK_HOLD_NS).await;
                    let z = next_zxid.get();
                    next_zxid.set(z + 1);
                    pending.borrow_mut().insert(z, client);
                    z
                };
                for q in &send_qs {
                    let _ = q.try_push(ZabMsg::Proposal { zxid, client });
                }
                if !sync_q.push((zxid, client)).await {
                    return;
                }
            }
        });
    }

    // --- Leader: SyncThread (txn log on /dev/shm) --------------------------
    {
        let ctx2 = ctx.clone();
        let sync_q = sync_q.clone();
        ctx.spawn(leader_node, "SyncThread", async move {
            while let Some((_zxid, _client)) = sync_q.pop().await {
                ctx2.cpu(costs::SYNC_NS).await;
                // Self-ack was pre-seeded in the ack table.
            }
        });
    }

    // --- Leader: Sender per follower --------------------------------------
    for (fi, &f) in followers.iter().enumerate() {
        let ctx2 = ctx.clone();
        let q = send_qs[fi].clone();
        let net2 = net.clone();
        let dst = replica_nodes[f];
        ctx.spawn(leader_node, format!("Sender:{}", fi + 1), async move {
            while let Some(msg) = q.pop().await {
                ctx2.cpu(costs::SEND_NS).await;
                let bytes = match msg {
                    ZabMsg::Proposal { .. } => 190,
                    ZabMsg::Commit { .. } => 40,
                    _ => 64,
                };
                net2.send(leader_node, dst, 500 + f as u64, 10, msg, bytes, true);
            }
        });
    }

    // --- Leader: CommitProcessor ------------------------------------------
    {
        let ctx2 = ctx.clone();
        let committed_q = committed_q.clone();
        let send_qs = send_qs.clone();
        let commit_lock = commit_lock.clone();
        ctx.spawn(leader_node, "CommitProcessor", async move {
            while let Some((zxid, client)) = committed_q.pop().await {
                {
                    // Coarse lock: committedRequests + zkDb apply.
                    let _g = commit_lock.lock().await;
                    ctx2.cpu(costs::LOCK_HOLD_NS).await;
                }
                ctx2.cpu(costs::COMMIT_NS).await;
                for q in &send_qs {
                    let _ = q.try_push(ZabMsg::Commit { zxid, client });
                }
            }
        });
    }

    // --- Followers ---------------------------------------------------------
    // Client placement: client i talks to follower (i % followers).
    let n_followers = followers.len();
    let client_follower: Vec<usize> = (0..cfg.clients)
        .map(|i| followers[i % n_followers])
        .collect();
    for &f in &followers {
        let node = replica_nodes[f];
        // Client-facing thread: receives requests, forwards to leader,
        // and replies after commit.
        let inbox: SimQueue<Delivery<ZabMsg>> =
            SimQueue::new(&ctx, format!("FollowerClientIn-{f}"), 1_000_000);
        net.bind(node, 20, inbox.clone());
        // Peer-facing thread: proposals and commits from the leader.
        let peer_in: SimQueue<Delivery<ZabMsg>> =
            SimQueue::new(&ctx, format!("FollowerPeerIn-{f}"), 1_000_000);
        net.bind(node, 10, peer_in.clone());

        {
            let ctx2 = ctx.clone();
            let net2 = net.clone();
            ctx.spawn(node, format!("FollowerClientIO-{f}"), async move {
                while let Some(d) = inbox.pop().await {
                    if let ZabMsg::Request { client } = d.payload {
                        ctx2.cpu(costs::FOLLOWER_CLIENT_NS).await;
                        net2.send(
                            node,
                            leader_node,
                            400 + f as u64,
                            100 + f as u32,
                            ZabMsg::Fwd { client },
                            190,
                            true,
                        );
                    }
                }
            });
        }
        {
            let ctx2 = ctx.clone();
            let net2 = net.clone();
            let client_nodes = client_nodes.clone();
            let nodes_per_client = cfg.client_nodes;
            let fi = followers
                .iter()
                .position(|x| *x == f)
                .expect("follower index");
            ctx.spawn(node, format!("FollowerMain-{f}"), async move {
                while let Some(d) = peer_in.pop().await {
                    match d.payload {
                        ZabMsg::Proposal { zxid, .. } => {
                            // Sync to the RAM-disk log, then ack.
                            ctx2.cpu(costs::FOLLOWER_SYNC_NS).await;
                            net2.send(
                                node,
                                leader_node,
                                400 + f as u64,
                                100 + f as u32,
                                ZabMsg::Ack { zxid },
                                64,
                                true,
                            );
                        }
                        ZabMsg::Commit { client, .. } => {
                            // Every follower applies every commit; only
                            // the follower owning the connection replies.
                            ctx2.cpu(costs::FOLLOWER_APPLY_NS).await;
                            let idx = client as usize;
                            if idx % n_followers == fi {
                                let dst = client_nodes[idx % nodes_per_client];
                                net2.send(
                                    node,
                                    dst,
                                    idx as u64,
                                    client_port(idx),
                                    ZabMsg::Reply { client },
                                    44,
                                    false,
                                );
                            }
                        }
                        _ => {}
                    }
                }
            });
        }
    }

    // --- Clients -------------------------------------------------------
    for i in 0..cfg.clients {
        let my_node = client_nodes[i % cfg.client_nodes];
        let follower = replica_nodes[client_follower[i]];
        let inbox: SimQueue<Delivery<ZabMsg>> = SimQueue::new(&ctx, format!("zk-client-{i}"), 16);
        net.bind(my_node, client_port(i), inbox.clone());
        let ctx2 = ctx.clone();
        let net2 = net.clone();
        let completed = Rc::clone(&completed);
        let measuring = Rc::clone(&measuring);
        let payload = cfg.request_payload;
        ctx.spawn(my_node, format!("zk-client-{i}"), async move {
            ctx2.sleep((i as u64 * 41_777) % 3_000_000).await;
            loop {
                net2.send(
                    my_node,
                    follower,
                    i as u64,
                    20,
                    ZabMsg::Request { client: i as u64 },
                    payload + 40,
                    false,
                );
                if inbox.pop().await.is_none() {
                    return;
                }
                if measuring.get() {
                    completed.set(completed.get() + 1);
                }
            }
        });
    }

    // A follower commit path wrinkle: the leader also applies commits but
    // never replies (no clients). The "Commit" messages routed above only
    // go to followers, which reply for their own clients — but a commit
    // reaches *both* followers while only one owns the client. The
    // duplicate reply to a foreign client is suppressed here by ownership.
    // (Handled above via `client_follower` at send time: replies go out
    // from every follower; the client's inbox only binds its own port on
    // its own node, so a foreign reply lands nowhere.)
    // NOTE: the spurious reply send costs CPU on the non-owner follower,
    // mirroring ZooKeeper followers applying every commit.

    sim.run_until(cfg.warmup_ns);
    measuring.set(true);
    let before = sim.thread_profiles();
    sim.run_until(cfg.duration_ns);
    let after = sim.thread_profiles();
    let window_ns = (cfg.duration_ns - cfg.warmup_ns) as f64;
    let throughput_rps = completed.get() as f64 / (window_ns / 1e9);

    // Followers first, leader last (the paper's "Replica 3 = leader").
    let mut replicas: Vec<NodeBreakdown> = followers
        .iter()
        .map(|&f| node_breakdown(&before, &after, replica_nodes[f], window_ns))
        .collect();
    replicas.push(node_breakdown(&before, &after, leader_node, window_ns));
    ZabResult {
        throughput_rps,
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cores: usize) -> ZabConfig {
        let mut cfg = ZabConfig::new(3, cores);
        cfg.clients = 240;
        cfg.warmup_ns = 150_000_000;
        cfg.duration_ns = 500_000_000;
        cfg
    }

    #[test]
    fn zab_model_serves_requests() {
        let r = run_zab_experiment(&quick(4));
        assert!(r.throughput_rps > 3_000.0, "got {}", r.throughput_rps);
        assert_eq!(r.replicas.len(), 3);
    }

    #[test]
    fn leader_threads_have_paper_names() {
        let r = run_zab_experiment(&quick(4));
        let leader = r.replicas.last().unwrap();
        let names: Vec<&str> = leader.threads.iter().map(|t| t.name.as_str()).collect();
        for expected in [
            "CommitProcessor",
            "LearnerHandler:1",
            "LearnerHandler:2",
            "ProcessThread",
            "Sender:1",
            "Sender:2",
            "SyncThread",
        ] {
            assert!(
                names.contains(&expected),
                "{expected} missing from {names:?}"
            );
        }
    }

    #[test]
    fn contention_grows_with_cores() {
        let low = run_zab_experiment(&quick(2));
        let high = run_zab_experiment(&quick(16));
        let blocked_low = low.replicas.last().unwrap().blocked_pct;
        let blocked_high = high.replicas.last().unwrap().blocked_pct;
        assert!(
            blocked_high > blocked_low,
            "cache bouncing rises with parallelism: {blocked_low} -> {blocked_high}"
        );
    }

    #[test]
    fn deterministic() {
        let a = run_zab_experiment(&quick(4)).throughput_rps;
        let b = run_zab_experiment(&quick(4)).throughput_rps;
        assert_eq!(a, b);
    }
}
