//! Command classification for dependency-aware parallel execution.
//!
//! The parallel executor (in `smr-core`) runs decided commands
//! concurrently when they cannot observe each other, and serializes them
//! when they can. Whether two commands *can* observe each other is a
//! property of the service, not of the replication layer, so the service
//! declares it: every command maps to a [`KeySet`] — the keys it reads
//! and writes, as 64-bit hashes — and two commands conflict iff their key
//! sets conflict (see [`KeySet::conflicts_with`]).
//!
//! The classification follows the standard read/write rule from the
//! parallel state-machine-replication literature ("Rethinking
//! State-Machine Replication for Parallelism", "Early Scheduling in
//! Parallel State Machine Replication"):
//!
//! * **read/read** on the same key — no conflict, may run concurrently;
//! * **read/write** or **write/write** on the same key — conflict, must
//!   execute in decided-log order;
//! * a **global** command (see [`KeySet::global`]) conflicts with
//!   everything — the safe classification for commands whose footprint
//!   cannot be determined from the payload (unparseable requests,
//!   whole-state scans, schema changes).
//!
//! Keys are compared by 64-bit hash ([`key_hash`]), never by value: a
//! hash collision between two distinct keys only creates a *false*
//! conflict, which costs parallelism but never correctness.
//!
//! # Examples
//!
//! ```
//! use smr_types::{key_hash, AccessMode, KeySet};
//!
//! let put_a = KeySet::write(key_hash(b"a"));
//! let get_a = KeySet::read(key_hash(b"a"));
//! let get_b = KeySet::read(key_hash(b"b"));
//! assert!(put_a.conflicts_with(&get_a), "write/read on one key");
//! assert!(!get_a.conflicts_with(&get_b), "different keys");
//! assert!(!get_a.conflicts_with(&get_a.clone()), "read/read");
//! assert!(KeySet::global().conflicts_with(&get_b), "global vs anything");
//! ```

/// How a command touches one key: reads may share, writes exclude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// The command observes the key's state without changing it.
    Read,
    /// The command may change the key's state (includes read-modify-write
    /// and delete).
    Write,
}

impl AccessMode {
    /// Whether two accesses to the *same* key conflict: everything except
    /// read/read.
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        !(self == AccessMode::Read && other == AccessMode::Read)
    }
}

/// The declared footprint of one command: which keys it touches and how.
///
/// Built by the service's classifier, consumed by the parallel
/// executor's dependency tracker. An empty key set means the command
/// touches no shared state and conflicts with nothing; a *global* key
/// set means the footprint is unknown and conflicts with everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeySet {
    entries: Vec<(u64, AccessMode)>,
    global: bool,
}

impl KeySet {
    /// An empty key set: the command touches no shared state.
    pub fn new() -> Self {
        KeySet::default()
    }

    /// A key set reading exactly one key.
    pub fn read(key: u64) -> Self {
        let mut s = KeySet::new();
        s.add_read(key);
        s
    }

    /// A key set writing exactly one key.
    pub fn write(key: u64) -> Self {
        let mut s = KeySet::new();
        s.add_write(key);
        s
    }

    /// The conservative classification: conflicts with every other
    /// command. Use for commands whose footprint cannot be determined.
    pub fn global() -> Self {
        KeySet {
            entries: Vec::new(),
            global: true,
        }
    }

    /// Adds a key read in place.
    pub fn add_read(&mut self, key: u64) {
        self.add(key, AccessMode::Read);
    }

    /// Adds a key write in place.
    pub fn add_write(&mut self, key: u64) {
        self.add(key, AccessMode::Write);
    }

    /// Adds an access, merging duplicates (a write subsumes a read of the
    /// same key, so `entries` holds at most one entry per key).
    pub fn add(&mut self, key: u64, mode: AccessMode) {
        for entry in &mut self.entries {
            if entry.0 == key {
                if mode == AccessMode::Write {
                    entry.1 = AccessMode::Write;
                }
                return;
            }
        }
        self.entries.push((key, mode));
    }

    /// The merged `(key hash, access)` entries, at most one per key.
    /// Empty for [`KeySet::global`] sets — check [`KeySet::is_global`]
    /// first.
    pub fn entries(&self) -> &[(u64, AccessMode)] {
        &self.entries
    }

    /// Whether this is the conflicts-with-everything classification.
    pub fn is_global(&self) -> bool {
        self.global
    }

    /// Whether the command declared no footprint at all (and is not
    /// global): it conflicts with nothing.
    pub fn is_empty(&self) -> bool {
        !self.global && self.entries.is_empty()
    }

    /// Whether two commands with these footprints must execute in decided
    /// order: either is global, or they access a common key and at least
    /// one of the accesses is a write.
    pub fn conflicts_with(&self, other: &KeySet) -> bool {
        if self.global || other.global {
            return true;
        }
        self.entries.iter().any(|(k, m)| {
            other
                .entries
                .iter()
                .any(|(ok, om)| k == ok && m.conflicts_with(*om))
        })
    }
}

/// Hashes a key's bytes to the 64-bit space [`KeySet`] works in
/// (FNV-1a). Deterministic across replicas, platforms, and runs — a
/// requirement, since every replica must build the identical dependency
/// graph from the identical decided order.
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_read_does_not_conflict() {
        let a = KeySet::read(1);
        let b = KeySet::read(1);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn write_conflicts_with_read_and_write() {
        assert!(KeySet::write(1).conflicts_with(&KeySet::read(1)));
        assert!(KeySet::read(1).conflicts_with(&KeySet::write(1)));
        assert!(KeySet::write(1).conflicts_with(&KeySet::write(1)));
    }

    #[test]
    fn distinct_keys_never_conflict() {
        assert!(!KeySet::write(1).conflicts_with(&KeySet::write(2)));
    }

    #[test]
    fn global_conflicts_with_everything() {
        assert!(KeySet::global().conflicts_with(&KeySet::new()));
        assert!(KeySet::new().conflicts_with(&KeySet::global()));
        assert!(KeySet::global().conflicts_with(&KeySet::global()));
        assert!(KeySet::global().is_global());
    }

    #[test]
    fn empty_conflicts_with_nothing_but_global() {
        let empty = KeySet::new();
        assert!(empty.is_empty());
        assert!(!empty.conflicts_with(&KeySet::write(1)));
        assert!(!empty.conflicts_with(&KeySet::new()));
    }

    #[test]
    fn write_subsumes_read_of_same_key() {
        let mut s = KeySet::read(7);
        s.add_write(7);
        assert_eq!(s.entries(), &[(7, AccessMode::Write)]);
        let mut s = KeySet::write(7);
        s.add_read(7);
        assert_eq!(s.entries(), &[(7, AccessMode::Write)]);
    }

    #[test]
    fn key_hash_is_stable_and_spreads() {
        // Pinned value: replicas on different machines must agree.
        assert_eq!(key_hash(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(key_hash(b"a"), key_hash(b"b"));
        assert_ne!(key_hash(b"ab"), key_hash(b"ba"));
    }
}
