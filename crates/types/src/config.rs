//! Cluster and replication-policy configuration.
//!
//! [`ClusterConfig`] describes a deployment: the number of replicas, the
//! batching policy ([`BatchPolicy`], the paper's `BSZ` and batch timeout),
//! the pipelining window (the paper's `WND`), queue capacities, and the
//! number of ClientIO threads — the parameters swept in the paper's
//! evaluation (Figs. 9–11, Tables I and III).

use std::time::Duration;

use crate::error::ConfigError;
use crate::ids::ReplicaId;

/// Batching policy: the conditions under which the Batcher closes the batch
/// it is building and hands it to the Protocol thread.
///
/// Mirrors §III-B of the paper: a batch is proposed when it reaches the
/// maximum size (`max_bytes`, the paper's `BSZ`) or its timeout expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchPolicy {
    /// Maximum serialized size of a batch in bytes (the paper's `BSZ`;
    /// default 1300, chosen so a batch fits one Ethernet frame).
    pub max_bytes: usize,
    /// Maximum number of requests per batch regardless of size.
    pub max_requests: usize,
    /// How long a non-empty batch may wait for more requests before being
    /// proposed anyway.
    pub timeout: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_bytes: 1300,
            max_requests: 4096,
            timeout: Duration::from_millis(5),
        }
    }
}

impl BatchPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any field is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_bytes == 0 {
            return Err(ConfigError::invalid("batch max_bytes must be > 0"));
        }
        if self.max_requests == 0 {
            return Err(ConfigError::invalid("batch max_requests must be > 0"));
        }
        if self.timeout.is_zero() {
            return Err(ConfigError::invalid("batch timeout must be > 0"));
        }
        Ok(())
    }
}

/// Retransmission policy for protocol messages that must eventually be
/// delivered (§V-C4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetransmitPolicy {
    /// Initial retransmission timeout.
    pub initial: Duration,
    /// Multiplier applied on every retransmission (exponential backoff).
    pub backoff_num: u32,
    /// Denominator of the backoff fraction (`backoff_num / backoff_den`).
    pub backoff_den: u32,
    /// Upper bound on the retransmission interval.
    pub max: Duration,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            initial: Duration::from_millis(100),
            backoff_num: 3,
            backoff_den: 2,
            max: Duration::from_secs(2),
        }
    }
}

impl RetransmitPolicy {
    /// The interval to wait after `attempt` retransmissions (0-based).
    pub fn interval(&self, attempt: u32) -> Duration {
        let mut d = self.initial;
        for _ in 0..attempt {
            d = d
                .checked_mul(self.backoff_num)
                .map(|x| x / self.backoff_den.max(1))
                .unwrap_or(self.max);
            if d >= self.max {
                return self.max;
            }
        }
        d.min(self.max)
    }
}

/// Static description of a replicated-state-machine deployment.
///
/// Construct with [`ClusterConfig::new`] for defaults or via
/// [`ClusterConfig::builder`] to tune the parameters the paper sweeps.
///
/// # Examples
///
/// ```
/// use smr_types::ClusterConfig;
///
/// let config = ClusterConfig::builder(5)
///     .window(35)
///     .client_io_threads(4)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(config.majority(), 3);
/// assert_eq!(config.window(), 35);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    n: usize,
    window: usize,
    batch: BatchPolicy,
    retransmit: RetransmitPolicy,
    client_io_threads: usize,
    request_queue_capacity: usize,
    proposal_queue_capacity: usize,
    dispatcher_queue_capacity: usize,
    decision_queue_capacity: usize,
    send_queue_capacity: usize,
    reply_queue_capacity: usize,
    heartbeat_interval: Duration,
    suspect_timeout: Duration,
    reply_cache_shards: usize,
}

impl ClusterConfig {
    /// Creates a configuration for `n` replicas with the paper's default
    /// parameters (`WND = 10`, `BSZ = 1300`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`. Use [`ClusterConfig::builder`] for fallible
    /// construction.
    pub fn new(n: usize) -> Self {
        ClusterConfig::builder(n)
            .build()
            .expect("default configuration is valid")
    }

    /// Starts building a configuration for `n` replicas.
    pub fn builder(n: usize) -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: ClusterConfig {
                n,
                window: 10,
                batch: BatchPolicy::default(),
                retransmit: RetransmitPolicy::default(),
                client_io_threads: 4,
                request_queue_capacity: 1000,
                proposal_queue_capacity: 20,
                dispatcher_queue_capacity: 4096,
                decision_queue_capacity: 1024,
                send_queue_capacity: 4096,
                reply_queue_capacity: 4096,
                heartbeat_interval: Duration::from_millis(100),
                suspect_timeout: Duration::from_millis(500),
                reply_cache_shards: 16,
            },
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Size of a majority quorum (`⌊n/2⌋ + 1`).
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Number of crash faults tolerated (`⌊(n-1)/2⌋`).
    pub fn max_faults(&self) -> usize {
        (self.n - 1) / 2
    }

    /// Maximum number of consensus instances executing in parallel (the
    /// paper's `WND`).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The batching policy.
    pub fn batch(&self) -> BatchPolicy {
        self.batch
    }

    /// The retransmission policy.
    pub fn retransmit(&self) -> RetransmitPolicy {
        self.retransmit
    }

    /// Number of ClientIO threads in the pool (§V-A; swept in Fig. 9).
    pub fn client_io_threads(&self) -> usize {
        self.client_io_threads
    }

    /// Capacity of the RequestQueue (ClientIO → Batcher).
    pub fn request_queue_capacity(&self) -> usize {
        self.request_queue_capacity
    }

    /// Capacity of the ProposalQueue (Batcher → Protocol).
    pub fn proposal_queue_capacity(&self) -> usize {
        self.proposal_queue_capacity
    }

    /// Capacity of the DispatcherQueue (everyone → Protocol).
    pub fn dispatcher_queue_capacity(&self) -> usize {
        self.dispatcher_queue_capacity
    }

    /// Capacity of the DecisionQueue (Protocol → ServiceManager).
    pub fn decision_queue_capacity(&self) -> usize {
        self.decision_queue_capacity
    }

    /// Capacity of each ReplicaIOSnd queue.
    pub fn send_queue_capacity(&self) -> usize {
        self.send_queue_capacity
    }

    /// Capacity of each per-ClientIO-thread ReplyQueue (ServiceManager →
    /// ClientIO; the third axis of the Fig. 9-style reply-path sweep).
    pub fn reply_queue_capacity(&self) -> usize {
        self.reply_queue_capacity
    }

    /// Leader heartbeat period for the failure detector.
    pub fn heartbeat_interval(&self) -> Duration {
        self.heartbeat_interval
    }

    /// Silence interval after which the leader is suspected.
    pub fn suspect_timeout(&self) -> Duration {
        self.suspect_timeout
    }

    /// Number of shards of the reply cache (§V-D: fine-grained locking).
    pub fn reply_cache_shards(&self) -> usize {
        self.reply_cache_shards
    }

    /// Iterator over all replica ids of the cluster.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n as u16).map(ReplicaId)
    }

    /// All replica ids except `me`.
    pub fn peers(&self, me: ReplicaId) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n as u16).map(ReplicaId).filter(move |r| *r != me)
    }

    /// Whether `id` is a valid replica id for this cluster.
    pub fn contains(&self, id: ReplicaId) -> bool {
        id.index() < self.n
    }
}

/// Builder for [`ClusterConfig`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Sets the pipelining window (the paper's `WND`).
    pub fn window(mut self, window: usize) -> Self {
        self.config.window = window;
        self
    }

    /// Sets the batching policy.
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.config.batch = batch;
        self
    }

    /// Sets the maximum batch size in bytes (the paper's `BSZ`).
    pub fn batch_bytes(mut self, max_bytes: usize) -> Self {
        self.config.batch.max_bytes = max_bytes;
        self
    }

    /// Sets the retransmission policy.
    pub fn retransmit(mut self, retransmit: RetransmitPolicy) -> Self {
        self.config.retransmit = retransmit;
        self
    }

    /// Sets the number of ClientIO threads.
    pub fn client_io_threads(mut self, threads: usize) -> Self {
        self.config.client_io_threads = threads;
        self
    }

    /// Sets the RequestQueue capacity.
    pub fn request_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.request_queue_capacity = capacity;
        self
    }

    /// Sets the ProposalQueue capacity.
    pub fn proposal_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.proposal_queue_capacity = capacity;
        self
    }

    /// Sets the DispatcherQueue capacity.
    pub fn dispatcher_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.dispatcher_queue_capacity = capacity;
        self
    }

    /// Sets the DecisionQueue capacity.
    pub fn decision_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.decision_queue_capacity = capacity;
        self
    }

    /// Sets the per-peer send queue capacity.
    pub fn send_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.send_queue_capacity = capacity;
        self
    }

    /// Sets the per-ClientIO-thread reply queue capacity.
    pub fn reply_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.reply_queue_capacity = capacity;
        self
    }

    /// Sets the heartbeat interval.
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.config.heartbeat_interval = interval;
        self
    }

    /// Sets the leader-suspect timeout.
    pub fn suspect_timeout(mut self, timeout: Duration) -> Self {
        self.config.suspect_timeout = timeout;
        self
    }

    /// Sets the number of reply-cache shards.
    pub fn reply_cache_shards(mut self, shards: usize) -> Self {
        self.config.reply_cache_shards = shards;
        self
    }

    /// Finishes the builder.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent (zero
    /// replicas, zero window, invalid batch policy, zero queue capacities,
    /// suspect timeout not larger than the heartbeat interval, …).
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        let c = &self.config;
        if c.n == 0 {
            return Err(ConfigError::invalid(
                "cluster must have at least one replica",
            ));
        }
        if c.window == 0 {
            return Err(ConfigError::invalid("window (WND) must be > 0"));
        }
        c.batch.validate()?;
        if c.client_io_threads == 0 {
            return Err(ConfigError::invalid("client_io_threads must be > 0"));
        }
        for (name, cap) in [
            ("request_queue_capacity", c.request_queue_capacity),
            ("proposal_queue_capacity", c.proposal_queue_capacity),
            ("dispatcher_queue_capacity", c.dispatcher_queue_capacity),
            ("decision_queue_capacity", c.decision_queue_capacity),
            ("send_queue_capacity", c.send_queue_capacity),
            ("reply_queue_capacity", c.reply_queue_capacity),
        ] {
            if cap == 0 {
                return Err(ConfigError::invalid(format!("{name} must be > 0")));
            }
        }
        if c.suspect_timeout <= c.heartbeat_interval {
            return Err(ConfigError::invalid(
                "suspect_timeout must exceed heartbeat_interval",
            ));
        }
        if c.reply_cache_shards == 0 {
            return Err(ConfigError::invalid("reply_cache_shards must be > 0"));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ClusterConfig::new(3);
        assert_eq!(c.n(), 3);
        assert_eq!(c.window(), 10);
        assert_eq!(c.batch().max_bytes, 1300);
        assert_eq!(c.request_queue_capacity(), 1000);
        assert_eq!(c.proposal_queue_capacity(), 20);
    }

    #[test]
    fn majority_and_faults() {
        for (n, maj, f) in [
            (1, 1, 0),
            (2, 2, 0),
            (3, 2, 1),
            (4, 3, 1),
            (5, 3, 2),
            (7, 4, 3),
        ] {
            let c = ClusterConfig::new(n);
            assert_eq!(c.majority(), maj, "n={n}");
            assert_eq!(c.max_faults(), f, "n={n}");
        }
    }

    #[test]
    fn builder_rejects_zero_replicas() {
        assert!(ClusterConfig::builder(0).build().is_err());
    }

    #[test]
    fn builder_rejects_zero_window() {
        assert!(ClusterConfig::builder(3).window(0).build().is_err());
    }

    #[test]
    fn reply_queue_capacity_round_trips_and_validates() {
        let c = ClusterConfig::builder(3)
            .reply_queue_capacity(128)
            .build()
            .unwrap();
        assert_eq!(c.reply_queue_capacity(), 128);
        assert_eq!(ClusterConfig::new(3).reply_queue_capacity(), 4096);
        assert!(ClusterConfig::builder(3)
            .reply_queue_capacity(0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_batch() {
        let bad = BatchPolicy {
            max_bytes: 0,
            ..BatchPolicy::default()
        };
        assert!(ClusterConfig::builder(3).batch(bad).build().is_err());
    }

    #[test]
    fn builder_rejects_suspect_not_above_heartbeat() {
        let r = ClusterConfig::builder(3)
            .heartbeat_interval(Duration::from_millis(100))
            .suspect_timeout(Duration::from_millis(100))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn peers_excludes_self() {
        let c = ClusterConfig::new(3);
        let peers: Vec<_> = c.peers(ReplicaId(1)).collect();
        assert_eq!(peers, vec![ReplicaId(0), ReplicaId(2)]);
    }

    #[test]
    fn retransmit_backoff_caps() {
        let p = RetransmitPolicy::default();
        assert_eq!(p.interval(0), Duration::from_millis(100));
        assert_eq!(p.interval(1), Duration::from_millis(150));
        assert!(p.interval(20) <= p.max);
    }

    #[test]
    fn contains_checks_bounds() {
        let c = ClusterConfig::new(3);
        assert!(c.contains(ReplicaId(2)));
        assert!(!c.contains(ReplicaId(3)));
    }
}
