//! Strongly-typed identifiers used throughout the replication stack.
//!
//! Every identifier is a newtype ([C-NEWTYPE]) so that a slot number can
//! never be confused with a view number or a client sequence number.

use std::fmt;

/// Identifier of a replica within a cluster, in `0..n`.
///
/// The replica with `View(v)` is the leader when `v % n == id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaId(pub u16);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl ReplicaId {
    /// Returns the identifier as a `usize`, convenient for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Globally unique client identifier.
///
/// In the paper's deployment, clients obtain ids when connecting; in this
/// library ids are assigned by the replica that accepts the connection (or
/// chosen by test harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Per-client monotonically increasing request sequence number.
///
/// `(ClientId, SeqNum)` uniquely identifies a request and is the key of the
/// reply cache that guarantees at-most-once execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The sequence number following this one.
    #[must_use]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Unique request identifier: the pair of client id and client sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId {
    /// The client that issued the request.
    pub client: ClientId,
    /// The client-local sequence number.
    pub seq: SeqNum,
}

impl RequestId {
    /// Creates a request id from its parts.
    pub fn new(client: ClientId, seq: SeqNum) -> Self {
        RequestId { client, seq }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.client, self.seq)
    }
}

/// Index of a consensus instance in the replicated log (Paxos instance
/// number / Zab zxid counter analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// First slot of the log.
    pub const ZERO: Slot = Slot(0);

    /// The slot following this one.
    #[must_use]
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// The slot preceding this one, or `None` at the start of the log.
    #[must_use]
    pub fn prev(self) -> Option<Slot> {
        self.0.checked_sub(1).map(Slot)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// View (ballot/round) number of the leader-election protocol.
///
/// The leader of view `v` in a cluster of `n` replicas is replica `v mod n`,
/// so each replica leads infinitely many views and a higher view always
/// has a well-defined leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View(pub u64);

impl View {
    /// The initial view of a fresh cluster; replica 0 leads it.
    pub const ZERO: View = View(0);

    /// The leader of this view in a cluster of `n` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn leader(self, n: usize) -> ReplicaId {
        assert!(n > 0, "cluster must have at least one replica");
        ReplicaId((self.0 % n as u64) as u16)
    }

    /// The next view led by `replica`, strictly greater than `self`.
    #[must_use]
    pub fn next_for(self, replica: ReplicaId, n: usize) -> View {
        assert!(n > 0, "cluster must have at least one replica");
        let n = n as u64;
        let mut v = self.0 + 1;
        let r = replica.0 as u64 % n;
        v += (r + n - v % n) % n;
        View(v)
    }

    /// The view after this one.
    #[must_use]
    pub fn next(self) -> View {
        View(self.0 + 1)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_display_and_index() {
        assert_eq!(ReplicaId(3).to_string(), "r3");
        assert_eq!(ReplicaId(3).index(), 3);
    }

    #[test]
    fn seq_num_next_increments() {
        assert_eq!(SeqNum(0).next(), SeqNum(1));
        assert_eq!(SeqNum(41).next(), SeqNum(42));
    }

    #[test]
    fn request_id_orders_by_client_then_seq() {
        let a = RequestId::new(ClientId(1), SeqNum(9));
        let b = RequestId::new(ClientId(2), SeqNum(0));
        assert!(a < b);
        let c = RequestId::new(ClientId(1), SeqNum(10));
        assert!(a < c);
    }

    #[test]
    fn slot_next_prev_roundtrip() {
        let s = Slot(7);
        assert_eq!(s.next(), Slot(8));
        assert_eq!(s.next().prev(), Some(s));
        assert_eq!(Slot::ZERO.prev(), None);
    }

    #[test]
    fn view_leader_rotates() {
        assert_eq!(View(0).leader(3), ReplicaId(0));
        assert_eq!(View(1).leader(3), ReplicaId(1));
        assert_eq!(View(2).leader(3), ReplicaId(2));
        assert_eq!(View(3).leader(3), ReplicaId(0));
    }

    #[test]
    fn view_next_for_lands_on_replica() {
        let n = 5;
        for start in 0..20u64 {
            for r in 0..n as u16 {
                let v = View(start).next_for(ReplicaId(r), n);
                assert!(v > View(start));
                assert_eq!(v.leader(n), ReplicaId(r));
                assert!(v.0 - start <= n as u64, "minimal next view");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn view_leader_panics_on_empty_cluster() {
        let _ = View(0).leader(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Slot(5).to_string(), "s5");
        assert_eq!(View(2).to_string(), "v2");
        assert_eq!(RequestId::new(ClientId(7), SeqNum(3)).to_string(), "c7:3");
    }
}
