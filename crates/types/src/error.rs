//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error produced when validating a [`crate::ClusterConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given explanation.
    pub fn invalid(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The explanation of what was invalid.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// Top-level error type of the replication stack.
#[derive(Debug)]
pub enum SmrError {
    /// The configuration was rejected.
    Config(ConfigError),
    /// A wire-format message could not be decoded.
    Codec(String),
    /// A transport-level failure (connection refused, reset, …).
    Transport(String),
    /// The replica or client was asked to operate after shutdown.
    Shutdown,
    /// The operation timed out.
    Timeout,
    /// The contacted replica is not the leader; the hint, if any, names a
    /// better candidate.
    NotLeader(Option<crate::ReplicaId>),
}

impl fmt::Display for SmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmrError::Config(e) => write!(f, "{e}"),
            SmrError::Codec(m) => write!(f, "codec error: {m}"),
            SmrError::Transport(m) => write!(f, "transport error: {m}"),
            SmrError::Shutdown => write!(f, "system is shut down"),
            SmrError::Timeout => write!(f, "operation timed out"),
            SmrError::NotLeader(Some(r)) => write!(f, "not the leader; try {r}"),
            SmrError::NotLeader(None) => write!(f, "not the leader"),
        }
    }
}

impl Error for SmrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SmrError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SmrError {
    fn from(e: ConfigError) -> Self {
        SmrError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplicaId;

    #[test]
    fn display_is_lowercase_and_concise() {
        assert_eq!(
            ConfigError::invalid("window (WND) must be > 0").to_string(),
            "invalid configuration: window (WND) must be > 0"
        );
        assert_eq!(SmrError::Timeout.to_string(), "operation timed out");
        assert_eq!(
            SmrError::NotLeader(Some(ReplicaId(2))).to_string(),
            "not the leader; try r2"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<SmrError>();
    }

    #[test]
    fn config_error_converts() {
        let e: SmrError = ConfigError::invalid("x").into();
        assert!(matches!(e, SmrError::Config(_)));
    }
}
