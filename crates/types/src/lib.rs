//! Core identifiers, configuration, and error types shared by every crate in
//! the `smr` workspace.
//!
//! This crate is deliberately tiny and dependency-free: it defines the
//! vocabulary of the system — who the replicas are ([`ReplicaId`]), how
//! consensus instances are numbered ([`Slot`]), how leadership epochs are
//! ordered ([`View`]), how a deployment is described ([`ClusterConfig`]),
//! and how commands declare the keys they touch for dependency-aware
//! parallel execution ([`KeySet`]).
//!
//! # Examples
//!
//! ```
//! use smr_types::{ClusterConfig, ReplicaId, View};
//!
//! let config = ClusterConfig::new(3);
//! assert_eq!(config.majority(), 2);
//! let view = View(4);
//! assert_eq!(view.leader(config.n()), ReplicaId(1));
//! ```

mod config;
mod conflict;
mod error;
mod ids;
mod snapshot;

pub use config::{BatchPolicy, ClusterConfig, ClusterConfigBuilder, RetransmitPolicy};
pub use conflict::{key_hash, AccessMode, KeySet};
pub use error::{ConfigError, SmrError};
pub use ids::{ClientId, ReplicaId, RequestId, SeqNum, Slot, View};
pub use snapshot::{CompactionPolicy, SnapshotBlob, SnapshotError};
