//! Snapshot and log-compaction vocabulary shared by the storage layer,
//! the protocol state machine, and the replica runtime.

use std::error::Error;
use std::fmt;

use crate::Slot;

/// A point-in-time capture of a replicated service's state.
///
/// `applied_upto` is an *exclusive* watermark: the snapshot reflects the
/// execution of every decided slot below it, and the first slot a
/// restored replica still has to execute is exactly `applied_upto`.
/// `state_hash` is the service's order-independent digest at that point,
/// recorded so a restore can be verified end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotBlob {
    /// First slot NOT covered by this snapshot (exclusive watermark).
    pub applied_upto: Slot,
    /// The service's state digest when the snapshot was taken.
    pub state_hash: u64,
    /// The service-defined serialized state.
    pub state: Vec<u8>,
}

/// Governs when a replica's log garbage-collects delivered slots.
///
/// Replaces the bare retention count of `PaxosReplica::set_retention`:
/// the policy is threaded through `ReplicaBuilder` so every layer —
/// protocol log, catch-up serving, and snapshot transfer — agrees on
/// what history still exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicy {
    /// Never garbage-collect (unbounded memory; tests and short runs).
    KeepAll,
    /// Keep the most recent `n` delivered slots (the pre-snapshot
    /// behaviour; stragglers older than `n` slots can never catch up).
    KeepSlots(u64),
    /// Compact everything below the snapshot watermark: history is
    /// dropped only once a snapshot covers it, so a straggler can always
    /// recover via snapshot transfer plus the retained tail.
    #[default]
    SnapshotDriven,
}

/// Error restoring a service from snapshot bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    detail: String,
}

impl SnapshotError {
    /// Creates a restore error with the given explanation.
    pub fn new(detail: impl Into<String>) -> Self {
        SnapshotError {
            detail: detail.into(),
        }
    }

    /// The explanation of what went wrong.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot restore failed: {}", self.detail)
    }
}

impl Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_snapshot_driven() {
        assert_eq!(
            CompactionPolicy::default(),
            CompactionPolicy::SnapshotDriven
        );
    }

    #[test]
    fn snapshot_error_displays_detail() {
        let e = SnapshotError::new("truncated header");
        assert_eq!(e.to_string(), "snapshot restore failed: truncated header");
        assert_eq!(e.detail(), "truncated header");
    }

    #[test]
    fn blob_is_comparable() {
        let a = SnapshotBlob {
            applied_upto: Slot(5),
            state_hash: 42,
            state: vec![1, 2, 3],
        };
        assert_eq!(a.clone(), a);
    }
}
