//! Streaming mean / standard-deviation accumulator (Welford's algorithm).
//!
//! Used for the Table I-style statistics: "average size during a run of
//! internal queues", reported as `mean ± std-error`.

/// Streaming statistics accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased), or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`σ/√n`), the `±` the paper's Table I
    /// reports.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased sample variance of that set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn std_error_shrinks_with_samples() {
        let mut s = RunningStats::new();
        for i in 0..10 {
            s.record(i as f64 % 2.0);
        }
        let early = s.std_error();
        for i in 0..1000 {
            s.record(i as f64 % 2.0);
        }
        assert!(s.std_error() < early);
    }
}
