//! Per-thread time accounting and lightweight metrics.
//!
//! The paper's evaluation methodology relies on classifying, for each
//! thread, where its wall-clock time goes (§VI, Figs. 1b, 8, 14):
//!
//! * **busy** — executing application work;
//! * **blocked** — stalled trying to acquire a lock (contention);
//! * **waiting** — parked on a condition variable, i.e. idle because an
//!   input queue is empty or an output queue is full;
//! * **other** — everything else (sleeping, blocked in a system call,
//!   runnable but waiting to be scheduled).
//!
//! The JVM exposes this through `ThreadMXBean`; this crate is the Rust
//! analogue for our own runtime: threads register with a
//! [`MetricsRegistry`], obtain a [`ThreadHandle`], and the queue/lock
//! wrappers in `smr-queue` mark state transitions through RAII guards.
//!
//! The crate also provides named [`Counter`]s, [`Gauge`]s and
//! [`Watermark`]s, [`RunningStats`] (mean ± std-dev accumulators used
//! for Table I-style queue statistics), latency [`Histogram`]s with
//! p50/p95/p99/max extraction, and a [`MetricsSnapshot`] export encoded
//! as JSON by the dependency-free [`json`] module.
//!
//! # Examples
//!
//! ```
//! use smr_metrics::{MetricsRegistry, ThreadState};
//!
//! let registry = MetricsRegistry::new();
//! let handle = registry.register_thread("Batcher");
//! {
//!     let _wait = handle.enter(ThreadState::Waiting);
//!     // ... park on a queue ...
//! }
//! let profile = registry.snapshot();
//! assert_eq!(profile.threads[0].name, "Batcher");
//! ```

mod counters;
mod export;
mod histogram;
pub mod json;
mod running;
mod thread_state;

pub use counters::{Counter, Gauge, Watermark};
pub use export::{MetricsSnapshot, QueueSnapshot};
pub use histogram::{Histogram, HistogramSummary, SharedHistogram};
pub use running::RunningStats;
pub use thread_state::{
    MetricsRegistry, ProfileSnapshot, StateGuard, ThreadHandle, ThreadProfile, ThreadState,
};
