//! Thread-state accounting: the `ThreadMXBean` analogue.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::{Counter, HistogramSummary, SharedHistogram};

/// The four thread states distinguished by the paper's profiling
/// methodology (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// Executing application work.
    Busy,
    /// Stalled acquiring a contended lock.
    Blocked,
    /// Parked on a condition variable (empty input / full output queue).
    Waiting,
    /// Sleeping, in a system call, or runnable but unscheduled.
    Other,
}

impl ThreadState {
    /// All states, in the order the paper's figures present them.
    pub const ALL: [ThreadState; 4] = [
        ThreadState::Busy,
        ThreadState::Blocked,
        ThreadState::Waiting,
        ThreadState::Other,
    ];

    fn index(self) -> usize {
        match self {
            ThreadState::Busy => 0,
            ThreadState::Blocked => 1,
            ThreadState::Waiting => 2,
            ThreadState::Other => 3,
        }
    }
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadState::Busy => "busy",
            ThreadState::Blocked => "blocked",
            ThreadState::Waiting => "waiting",
            ThreadState::Other => "other",
        };
        f.write_str(s)
    }
}

#[derive(Debug)]
struct ThreadRecord {
    name: String,
    /// Accumulated nanoseconds per state.
    nanos: [AtomicU64; 4],
    /// State the thread is currently in.
    current: Mutex<(ThreadState, Instant)>,
    started: Instant,
}

impl ThreadRecord {
    fn transition(&self, to: ThreadState) -> ThreadState {
        let mut cur = self.current.lock();
        let now = Instant::now();
        let (from, since) = *cur;
        let elapsed = now.duration_since(since).as_nanos() as u64;
        self.nanos[from.index()].fetch_add(elapsed, Ordering::Relaxed);
        *cur = (to, now);
        from
    }
}

/// Handle owned by a registered thread; records its state transitions.
///
/// Cloneable so helper structures (queues, locks) can keep a copy.
#[derive(Debug, Clone)]
pub struct ThreadHandle {
    record: Arc<ThreadRecord>,
}

impl ThreadHandle {
    /// Enters `state`, returning a guard that restores the previous state
    /// when dropped.
    pub fn enter(&self, state: ThreadState) -> StateGuard {
        let prev = self.record.transition(state);
        StateGuard {
            record: Arc::clone(&self.record),
            prev,
        }
    }

    /// Switches to `state` without automatic restoration.
    pub fn set_state(&self, state: ThreadState) {
        self.record.transition(state);
    }

    /// The registered thread name.
    pub fn name(&self) -> &str {
        &self.record.name
    }
}

/// RAII guard produced by [`ThreadHandle::enter`]; restores the previous
/// thread state on drop.
#[derive(Debug)]
pub struct StateGuard {
    record: Arc<ThreadRecord>,
    prev: ThreadState,
}

impl Drop for StateGuard {
    fn drop(&mut self) {
        self.record.transition(self.prev);
    }
}

/// Per-thread profile: total time spent in each state since registration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadProfile {
    /// Thread name as registered (e.g. `"ClientIO-0"`, `"Protocol"`).
    pub name: String,
    /// Nanoseconds spent busy.
    pub busy_ns: u64,
    /// Nanoseconds spent blocked on locks.
    pub blocked_ns: u64,
    /// Nanoseconds spent waiting on condition variables.
    pub waiting_ns: u64,
    /// Nanoseconds spent in other states.
    pub other_ns: u64,
    /// Wall-clock nanoseconds since the thread registered.
    pub wall_ns: u64,
}

impl ThreadProfile {
    /// Fraction of wall time in the given state, in `[0, 1]`.
    pub fn fraction(&self, state: ThreadState) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        let ns = match state {
            ThreadState::Busy => self.busy_ns,
            ThreadState::Blocked => self.blocked_ns,
            ThreadState::Waiting => self.waiting_ns,
            ThreadState::Other => self.other_ns,
        };
        ns as f64 / self.wall_ns as f64
    }
}

/// Snapshot of every registered thread's profile.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// One entry per registered thread, in registration order.
    pub threads: Vec<ThreadProfile>,
}

impl ProfileSnapshot {
    /// Sum of blocked time across all threads, in nanoseconds — the paper's
    /// "total blocked time" contention metric (Figs. 5b/5d, 7, 13b).
    pub fn total_blocked_ns(&self) -> u64 {
        self.threads.iter().map(|t| t.blocked_ns).sum()
    }

    /// Sum of busy time across all threads, in nanoseconds — proportional
    /// to the paper's CPU-utilization metric.
    pub fn total_busy_ns(&self) -> u64 {
        self.threads.iter().map(|t| t.busy_ns).sum()
    }

    /// Renders the snapshot as a per-thread percentage table, one line per
    /// thread, mimicking Figs. 1b/8/14.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>7} {:>8} {:>8} {:>7}\n",
            "thread", "busy%", "blocked%", "waiting%", "other%"
        ));
        for t in &self.threads {
            out.push_str(&format!(
                "{:<18} {:>6.1} {:>8.1} {:>8.1} {:>7.1}\n",
                t.name,
                100.0 * t.fraction(ThreadState::Busy),
                100.0 * t.fraction(ThreadState::Blocked),
                100.0 * t.fraction(ThreadState::Waiting),
                100.0 * t.fraction(ThreadState::Other),
            ));
        }
        out
    }
}

/// Registry of all instrumented threads of a replica process, plus its
/// named [`Counter`]s and latency [`SharedHistogram`]s.
///
/// Cheap to clone (shared internally).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Arc<ThreadRecord>>>>,
    counters: Arc<Mutex<BTreeMap<String, Counter>>>,
    histograms: Arc<Mutex<BTreeMap<String, SharedHistogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers the calling thread under `name`; it starts in the
    /// [`ThreadState::Busy`] state.
    pub fn register_thread(&self, name: impl Into<String>) -> ThreadHandle {
        let record = Arc::new(ThreadRecord {
            name: name.into(),
            nanos: Default::default(),
            current: Mutex::new((ThreadState::Busy, Instant::now())),
            started: Instant::now(),
        });
        self.inner.lock().push(Arc::clone(&record));
        ThreadHandle { record }
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Clones share the underlying value, so callers can hoist the
    /// handle out of hot loops.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        self.counters.lock().entry(name.into()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use. Clones share the underlying samples.
    pub fn histogram(&self, name: impl Into<String>) -> SharedHistogram {
        self.histograms
            .lock()
            .entry(name.into())
            .or_default()
            .clone()
    }

    /// Current values of every named counter, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Summaries of every named histogram, sorted by name. Histograms with
    /// no samples are skipped.
    pub fn histogram_summaries(&self) -> Vec<HistogramSummary> {
        self.histograms
            .lock()
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| h.snapshot().summary(name.clone()))
            .collect()
    }

    /// Takes a profile snapshot of every registered thread.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let records = self.inner.lock();
        let threads = records
            .iter()
            .map(|r| {
                // Fold the in-progress interval into the totals without
                // disturbing the thread.
                let (state, since) = *r.current.lock();
                let now = Instant::now();
                let in_progress = now.duration_since(since).as_nanos() as u64;
                let mut ns = [0u64; 4];
                for (i, slot) in r.nanos.iter().enumerate() {
                    ns[i] = slot.load(Ordering::Relaxed);
                }
                ns[state.index()] += in_progress;
                ThreadProfile {
                    name: r.name.clone(),
                    busy_ns: ns[0],
                    blocked_ns: ns[1],
                    waiting_ns: ns[2],
                    other_ns: ns[3],
                    wall_ns: now.duration_since(r.started).as_nanos() as u64,
                }
            })
            .collect();
        ProfileSnapshot { threads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registers_and_snapshots() {
        let reg = MetricsRegistry::new();
        let h = reg.register_thread("Protocol");
        assert_eq!(h.name(), "Protocol");
        std::thread::sleep(Duration::from_millis(5));
        let snap = reg.snapshot();
        assert_eq!(snap.threads.len(), 1);
        assert!(
            snap.threads[0].busy_ns > 0,
            "time accrues to the current state"
        );
    }

    #[test]
    fn guard_restores_previous_state() {
        let reg = MetricsRegistry::new();
        let h = reg.register_thread("t");
        {
            let _g = h.enter(ThreadState::Waiting);
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(5));
        let snap = reg.snapshot();
        let t = &snap.threads[0];
        assert!(t.waiting_ns > 0);
        assert!(t.busy_ns > 0);
    }

    #[test]
    fn nested_guards() {
        let reg = MetricsRegistry::new();
        let h = reg.register_thread("t");
        {
            let _w = h.enter(ThreadState::Waiting);
            {
                let _b = h.enter(ThreadState::Blocked);
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let t = &snap.threads[0];
        assert!(t.blocked_ns > 0);
        assert!(t.waiting_ns > 0);
    }

    #[test]
    fn fractions_sum_to_about_one() {
        let reg = MetricsRegistry::new();
        let h = reg.register_thread("t");
        {
            let _g = h.enter(ThreadState::Other);
            std::thread::sleep(Duration::from_millis(3));
        }
        let snap = reg.snapshot();
        let t = &snap.threads[0];
        let sum: f64 = ThreadState::ALL.iter().map(|s| t.fraction(*s)).sum();
        assert!((sum - 1.0).abs() < 0.05, "fractions sum to ~1, got {sum}");
    }

    #[test]
    fn total_blocked_aggregates() {
        let reg = MetricsRegistry::new();
        let a = reg.register_thread("a");
        let b = reg.register_thread("b");
        {
            let _g1 = a.enter(ThreadState::Blocked);
            let _g2 = b.enter(ThreadState::Blocked);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        assert!(snap.total_blocked_ns() >= 2 * 1_000_000);
    }

    #[test]
    fn named_counters_are_get_or_register() {
        let reg = MetricsRegistry::new();
        reg.counter("net.send_drops").add(3);
        reg.counter("net.send_drops").inc();
        reg.counter("wal.bytes").add(100);
        assert_eq!(
            reg.counter_values(),
            vec![
                ("net.send_drops".to_string(), 4),
                ("wal.bytes".to_string(), 100)
            ]
        );
    }

    #[test]
    fn named_histograms_share_and_skip_empty() {
        let reg = MetricsRegistry::new();
        reg.histogram("stage.a").record(100);
        reg.histogram("stage.a").record(200);
        let _empty = reg.histogram("stage.never_hit");
        let sums = reg.histogram_summaries();
        assert_eq!(sums.len(), 1, "empty histograms are not exported");
        assert_eq!(sums[0].name, "stage.a");
        assert_eq!(sums[0].count, 2);
    }

    #[test]
    fn render_table_contains_thread_names() {
        let reg = MetricsRegistry::new();
        reg.register_thread("ClientIO-0");
        reg.register_thread("Batcher");
        let table = reg.snapshot().render_table();
        assert!(table.contains("ClientIO-0"));
        assert!(table.contains("Batcher"));
        assert!(table.contains("busy%"));
    }
}
