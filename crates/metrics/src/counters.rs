//! Atomic counters and gauges.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter (requests ordered, packets sent, …).
///
/// Cheap to clone; clones share the same underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Instantaneous level that can move in both directions (queue length,
/// in-flight window occupancy, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl fmt::Display for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Running maximum of an observed series (queue high-watermark, largest
/// batch, …). Updates are a single `fetch_max`.
///
/// Cheap to clone; clones share the same underlying value.
#[derive(Debug, Clone, Default)]
pub struct Watermark {
    value: Arc<AtomicU64>,
}

impl Watermark {
    /// Creates a watermark at zero.
    pub fn new() -> Self {
        Watermark::default()
    }

    /// Raises the watermark to `v` if `v` exceeds the current value.
    pub fn observe(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Highest value observed so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl fmt::Display for Watermark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn watermark_keeps_maximum() {
        let w = Watermark::new();
        w.observe(5);
        w.observe(3);
        w.observe(9);
        w.observe(7);
        assert_eq!(w.get(), 9);
        let w2 = w.clone();
        w2.observe(11);
        assert_eq!(w.get(), 11, "clones share state");
    }

    #[test]
    fn counter_is_threadsafe() {
        let c = Counter::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
