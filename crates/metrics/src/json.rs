//! A minimal hand-rolled JSON writer and parser.
//!
//! The metrics export needs machine-readable output without pulling a
//! serialization dependency into the workspace (all deps are vendored).
//! This module provides the two halves the observability layer needs:
//!
//! * [`JsonWriter`] — an append-only writer producing valid, readably
//!   indented JSON (used by
//!   [`MetricsSnapshot::to_json`](crate::MetricsSnapshot::to_json));
//! * [`JsonValue`] — a recursive-descent parser for reading snapshots
//!   back (used by the bench tools and the CI smoke test).
//!
//! The parser accepts the JSON subset the writer emits plus standard
//! string escapes; numbers are parsed as `f64` (sufficient for metric
//! values, which are counts and nanosecond latencies well inside the
//! 2^53 integer-exact range of a double).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (finite; NaN/inf map to 0).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// An append-only JSON document writer with bracket tracking.
///
/// # Examples
///
/// ```
/// use smr_metrics::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("answer");
/// w.value_u64(42);
/// w.end_object();
/// assert_eq!(w.finish(), "{\"answer\":42}");
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// For each open scope: whether a first element was already written.
    scopes: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn comma(&mut self) {
        if let Some(has_elem) = self.scopes.last_mut() {
            if *has_elem {
                self.out.push(',');
            }
            *has_elem = true;
        }
    }

    /// Opens a `{` scope (as a value in the enclosing scope).
    pub fn begin_object(&mut self) {
        self.comma();
        self.out.push('{');
        self.scopes.push(false);
    }

    /// Closes the innermost `{` scope.
    pub fn end_object(&mut self) {
        self.scopes.pop();
        self.out.push('}');
        // Closing a scope does not re-arm the comma: the parent already
        // marked an element when the scope opened.
    }

    /// Opens a `[` scope (as a value in the enclosing scope).
    pub fn begin_array(&mut self) {
        self.comma();
        self.out.push('[');
        self.scopes.push(false);
    }

    /// Closes the innermost `[` scope.
    pub fn end_array(&mut self) {
        self.scopes.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next call writes its value.
    pub fn key(&mut self, k: &str) {
        self.comma();
        self.out.push_str(&escape(k));
        self.out.push(':');
        // The value that follows must not emit a comma.
        if let Some(has_elem) = self.scopes.last_mut() {
            *has_elem = false;
        }
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) {
        self.comma();
        self.out.push_str(&escape(v));
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value.
    pub fn value_f64(&mut self, v: f64) {
        self.comma();
        self.out.push_str(&number(v));
    }

    /// Consumes the writer, returning the document.
    ///
    /// # Panics
    ///
    /// Panics if a scope is still open (a bug in the caller).
    pub fn finish(self) -> String {
        assert!(self.scopes.is_empty(), "unclosed JSON scope");
        self.out
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as an `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable description with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object's keys, if it is an object.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Object(m) => m.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 code point.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("threads");
        w.begin_array();
        w.begin_object();
        w.key("name");
        w.value_str("Batcher");
        w.key("busy_ns");
        w.value_u64(123);
        w.end_object();
        w.end_array();
        w.key("ok");
        w.value_f64(1.5);
        w.end_object();
        let doc = w.finish();
        assert_eq!(
            doc,
            "{\"threads\":[{\"name\":\"Batcher\",\"busy_ns\":123}],\"ok\":1.500}"
        );
    }

    #[test]
    fn writer_roundtrips_through_parser() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a \"quoted\"\nkey");
        w.value_str("tab\there");
        w.key("n");
        w.value_i64(-7);
        w.key("arr");
        w.begin_array();
        w.value_u64(1);
        w.value_u64(2);
        w.end_array();
        w.end_object();
        let doc = w.finish();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(
            v.get("a \"quoted\"\nkey").and_then(JsonValue::as_str),
            Some("tab\there")
        );
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-7.0));
        assert_eq!(v.get("arr").and_then(JsonValue::as_array).unwrap().len(), 2);
    }

    #[test]
    fn parser_handles_whitespace_and_literals() {
        let v = JsonValue::parse(" { \"a\" : [ true , false , null , 1.5e2 ] } ").unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Bool(false));
        assert_eq!(arr[2], JsonValue::Null);
        assert_eq!(arr[3], JsonValue::Number(150.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn numbers_format_compactly() {
        assert_eq!(number(42.0), "42");
        assert_eq!(number(1.5), "1.500");
        assert_eq!(number(f64::NAN), "0");
    }

    #[test]
    fn empty_containers() {
        let v = JsonValue::parse("{\"a\":[],\"b\":{}}").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_array).unwrap().len(), 0);
        assert!(v.get("b").unwrap().keys().is_empty());
    }
}
