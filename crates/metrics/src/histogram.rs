//! Log-scaled latency histogram.

use std::sync::Arc;

use parking_lot::Mutex;

/// A power-of-two bucketed histogram for latencies in nanoseconds.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns; precise enough for the
/// millisecond-scale instance latencies of Figs. 10b/11b while staying
/// allocation-free on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram covering 1ns .. ~584 years.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records a latency in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        let idx = if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(nanos);
        self.max = self.max.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds, or 0 if empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in nanoseconds (exact, not bucketed), or 0
    /// if empty.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Approximate quantile (`q` in `[0,1]`) in nanoseconds using the
    /// geometric midpoint of the containing bucket: the reported value is
    /// always inside the same power-of-two bucket as the exact
    /// order-statistic, so it is off by less than 2x (one bucket).
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = (1u128 << i) as f64;
                // Never report beyond the observed maximum: the top
                // bucket's midpoint can overshoot it.
                return (lo * std::f64::consts::SQRT_2).min(self.max.max(1) as f64);
            }
        }
        (1u128 << 63) as f64
    }

    /// Median (p50) in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile in nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Condenses the histogram into the summary statistics the metrics
    /// export carries (count, mean, p50/p95/p99, max).
    pub fn summary(&self, name: impl Into<String>) -> HistogramSummary {
        HistogramSummary {
            name: name.into(),
            count: self.count,
            mean_ns: self.mean_ns(),
            p50_ns: self.p50_ns(),
            p95_ns: self.p95_ns(),
            p99_ns: self.p99_ns(),
            max_ns: self.max,
        }
    }

    /// Merges another histogram into this one. Equivalent to having
    /// recorded the concatenation of both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Summary statistics of one named histogram, as exported in a
/// [`MetricsSnapshot`](crate::MetricsSnapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// The histogram's registered name (e.g. `"stage.proposed_to_decided"`).
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median in nanoseconds (bucket midpoint).
    pub p50_ns: f64,
    /// 95th percentile in nanoseconds (bucket midpoint).
    pub p95_ns: f64,
    /// 99th percentile in nanoseconds (bucket midpoint).
    pub p99_ns: f64,
    /// Exact largest sample in nanoseconds.
    pub max_ns: u64,
}

/// A [`Histogram`] behind a lock, shareable between the thread that
/// records (pipeline stages record once per *batch*, so the lock is
/// uncontended in steady state) and the thread that snapshots.
///
/// Cloning shares the histogram.
#[derive(Debug, Clone, Default)]
pub struct SharedHistogram {
    inner: Arc<Mutex<Histogram>>,
}

impl SharedHistogram {
    /// Creates an empty shared histogram.
    pub fn new() -> Self {
        SharedHistogram::default()
    }

    /// Records a latency in nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.inner.lock().record(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count()
    }

    /// A point-in-time copy of the underlying histogram.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert!((h.mean_ns() - 200.0).abs() < 1e-9);
        assert_eq!(h.max_ns(), 300);
    }

    #[test]
    fn zero_is_accepted() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..1000u64 {
            h.record(i * 1000);
        }
        let p50 = h.p50_ns();
        let p99 = h.p99_ns();
        assert!(p50 <= p99);
        assert!(p50 > 0.0);
        assert!(p99 <= h.max_ns() as f64);
    }

    #[test]
    fn quantile_capped_at_max() {
        let mut h = Histogram::new();
        h.record(1025); // bucket [1024, 2048), midpoint ~1448
        assert!(h.quantile_ns(1.0) <= 1025.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ns() - 15.0).abs() < 1e-9);
        assert_eq!(a.max_ns(), 20);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile_ns(0.5), 0.0);
    }

    #[test]
    fn summary_carries_all_fields() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(i * 100);
        }
        let s = h.summary("stage.test");
        assert_eq!(s.name, "stage.test");
        assert_eq!(s.count, 100);
        assert_eq!(s.max_ns, 10_000);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        assert!(s.mean_ns > 0.0);
    }

    #[test]
    fn shared_histogram_shares_samples() {
        let h = SharedHistogram::new();
        let h2 = h.clone();
        h.record(500);
        h2.record(700);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max_ns(), 700);
    }
}
