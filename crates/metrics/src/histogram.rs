//! Log-scaled latency histogram.

/// A power-of-two bucketed histogram for latencies in nanoseconds.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns; precise enough for the
/// millisecond-scale instance latencies of Figs. 10b/11b while staying
/// allocation-free on the hot path.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram covering 1ns .. ~584 years.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records a latency in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        let idx = if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds, or 0 if empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0,1]`) in nanoseconds using the
    /// geometric midpoint of the containing bucket.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = (1u128 << i) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        (1u128 << 63) as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert!((h.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_is_accepted() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..1000u64 {
            h.record(i * 1000);
        }
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p99);
        assert!(p50 > 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ns() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile_ns(0.5), 0.0);
    }
}
