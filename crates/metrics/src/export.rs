//! Machine-readable export of a replica's full metrics state.
//!
//! A [`MetricsSnapshot`] bundles the four observability surfaces the
//! paper's evaluation relies on — per-thread state profiles (Figs. 1b,
//! 8, 14), named counters, per-stage latency histograms, and Table
//! I-style queue statistics — into one structure with a stable JSON
//! encoding (via the hand-rolled [`json`](crate::json) module; the
//! workspace carries no serialization dependency).

use crate::json::JsonWriter;
use crate::{HistogramSummary, ThreadProfile};

/// Point-in-time statistics of one named bounded queue, as sampled for
/// the export. Mirrors Table I of the paper: besides raw totals it
/// carries the mean ± std-dev of the queue depth when a depth sampler
/// is running.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueueSnapshot {
    /// Queue name as registered (e.g. `"request_q"`).
    pub name: String,
    /// Configured capacity.
    pub capacity: usize,
    /// Depth at snapshot time.
    pub depth: usize,
    /// Highest depth ever observed by the queue itself (exact, not
    /// sampled).
    pub high_watermark: usize,
    /// Total items pushed.
    pub pushed: u64,
    /// Total items popped.
    pub popped: u64,
    /// Pushes that had to wait for space (queue-full backpressure).
    pub push_waits: u64,
    /// Pops that had to wait for an item (queue empty).
    pub pop_waits: u64,
    /// Mean sampled depth (0 when no sampler ran).
    pub depth_mean: f64,
    /// Std-dev of the sampled depth (0 when no sampler ran).
    pub depth_stddev: f64,
    /// Number of depth samples taken (0 when no sampler ran).
    pub depth_samples: u64,
}

/// A complete metrics snapshot of one replica: thread profiles, named
/// counters, latency histograms, and queue statistics.
///
/// Serialize with [`to_json`](MetricsSnapshot::to_json); parse the
/// result back with [`JsonValue`](crate::json::JsonValue). The JSON
/// document has exactly the top-level keys `replica`, `uptime_ns`,
/// `threads`, `counters`, `histograms`, and `queues`.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Identifier of the replica the snapshot describes.
    pub replica: u64,
    /// Nanoseconds since the replica started.
    pub uptime_ns: u64,
    /// Per-thread busy/blocked/waiting/other profiles.
    pub threads: Vec<ThreadProfile>,
    /// Named counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-stage latency summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Per-queue statistics.
    pub queues: Vec<QueueSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("replica");
        w.value_u64(self.replica);
        w.key("uptime_ns");
        w.value_u64(self.uptime_ns);

        w.key("threads");
        w.begin_array();
        for t in &self.threads {
            w.begin_object();
            w.key("name");
            w.value_str(&t.name);
            w.key("busy_ns");
            w.value_u64(t.busy_ns);
            w.key("blocked_ns");
            w.value_u64(t.blocked_ns);
            w.key("waiting_ns");
            w.value_u64(t.waiting_ns);
            w.key("other_ns");
            w.value_u64(t.other_ns);
            w.key("wall_ns");
            w.value_u64(t.wall_ns);
            w.end_object();
        }
        w.end_array();

        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.value_u64(*value);
        }
        w.end_object();

        w.key("histograms");
        w.begin_array();
        for h in &self.histograms {
            w.begin_object();
            w.key("name");
            w.value_str(&h.name);
            w.key("count");
            w.value_u64(h.count);
            w.key("mean_ns");
            w.value_f64(h.mean_ns);
            w.key("p50_ns");
            w.value_f64(h.p50_ns);
            w.key("p95_ns");
            w.value_f64(h.p95_ns);
            w.key("p99_ns");
            w.value_f64(h.p99_ns);
            w.key("max_ns");
            w.value_u64(h.max_ns);
            w.end_object();
        }
        w.end_array();

        w.key("queues");
        w.begin_array();
        for q in &self.queues {
            w.begin_object();
            w.key("name");
            w.value_str(&q.name);
            w.key("capacity");
            w.value_u64(q.capacity as u64);
            w.key("depth");
            w.value_u64(q.depth as u64);
            w.key("high_watermark");
            w.value_u64(q.high_watermark as u64);
            w.key("pushed");
            w.value_u64(q.pushed);
            w.key("popped");
            w.value_u64(q.popped);
            w.key("push_waits");
            w.value_u64(q.push_waits);
            w.key("pop_waits");
            w.value_u64(q.pop_waits);
            w.key("depth_mean");
            w.value_f64(q.depth_mean);
            w.key("depth_stddev");
            w.value_f64(q.depth_stddev);
            w.key("depth_samples");
            w.value_u64(q.depth_samples);
            w.end_object();
        }
        w.end_array();

        w.end_object();
        w.finish()
    }

    /// Finds a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Finds a queue snapshot by name.
    pub fn queue(&self, name: &str) -> Option<&QueueSnapshot> {
        self.queues.iter().find(|q| q.name == name)
    }

    /// Finds a named counter value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut h = Histogram::new();
        for i in 1..=50 {
            h.record(i * 1_000);
        }
        MetricsSnapshot {
            replica: 2,
            uptime_ns: 5_000_000,
            threads: vec![ThreadProfile {
                name: "Batcher".into(),
                busy_ns: 10,
                blocked_ns: 20,
                waiting_ns: 30,
                other_ns: 40,
                wall_ns: 100,
            }],
            counters: vec![("net.send_drops".into(), 7)],
            histograms: vec![h.summary("stage.intake_to_sealed")],
            queues: vec![QueueSnapshot {
                name: "request_q".into(),
                capacity: 1024,
                depth: 3,
                high_watermark: 17,
                pushed: 500,
                popped: 497,
                push_waits: 2,
                pop_waits: 9,
                depth_mean: 4.25,
                depth_stddev: 1.5,
                depth_samples: 40,
            }],
        }
    }

    #[test]
    fn json_has_all_top_level_keys() {
        let doc = sample_snapshot().to_json();
        let v = JsonValue::parse(&doc).expect("snapshot JSON parses");
        for key in [
            "replica",
            "uptime_ns",
            "threads",
            "counters",
            "histograms",
            "queues",
        ] {
            assert!(v.get(key).is_some(), "missing top-level key {key}");
        }
    }

    #[test]
    fn json_roundtrips_values() {
        let snap = sample_snapshot();
        let v = JsonValue::parse(&snap.to_json()).unwrap();
        assert_eq!(v.get("replica").and_then(JsonValue::as_f64), Some(2.0));
        let threads = v.get("threads").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            threads[0].get("name").and_then(JsonValue::as_str),
            Some("Batcher")
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("net.send_drops"))
                .and_then(JsonValue::as_f64),
            Some(7.0)
        );
        let hists = v.get("histograms").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            hists[0].get("count").and_then(JsonValue::as_f64),
            Some(50.0)
        );
        let queues = v.get("queues").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            queues[0].get("high_watermark").and_then(JsonValue::as_f64),
            Some(17.0)
        );
        assert_eq!(
            queues[0].get("depth_mean").and_then(JsonValue::as_f64),
            Some(4.25)
        );
    }

    #[test]
    fn accessors_find_by_name() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("net.send_drops"), Some(7));
        assert!(snap.histogram("stage.intake_to_sealed").is_some());
        assert!(snap.queue("request_q").is_some());
        assert!(snap.queue("nope").is_none());
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let v = JsonValue::parse(&MetricsSnapshot::default().to_json()).unwrap();
        assert_eq!(
            v.get("threads")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            0
        );
    }
}
