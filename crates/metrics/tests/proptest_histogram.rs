//! Property tests for [`smr_metrics::Histogram`]: the bucketed
//! percentiles must stay within one power-of-two bucket of an exact
//! sorted-vector oracle, and `merge` must be indistinguishable from
//! recording the concatenated sample stream.

use proptest::prelude::*;
use smr_metrics::Histogram;

/// Power-of-two bucket index the histogram files `v` under.
fn bucket(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros()
    }
}

/// Exact order statistic matching the histogram's quantile definition:
/// the smallest sample with at least `ceil(q * n)` samples at or below
/// it.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[target.min(sorted.len()) - 1]
}

proptest! {
    /// Reported percentiles fall in the same power-of-two bucket as the
    /// exact order statistic (i.e. they are off by strictly less than
    /// 2x), for a spread of magnitudes from 0 ns to minutes.
    #[test]
    fn percentiles_within_one_bucket_of_oracle(
        samples in proptest::collection::vec(0u64..100_000_000_000, 1..400),
        q_pct in 1u64..100,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for q in [q_pct as f64 / 100.0, 0.50, 0.95, 0.99] {
            let exact = oracle_quantile(&sorted, q);
            let reported = h.quantile_ns(q);
            // The report is the geometric midpoint of the exact value's
            // bucket, capped at the observed max — so it must land in
            // the very same bucket (floor(log2)) as the oracle.
            prop_assert_eq!(
                bucket(reported as u64),
                bucket(exact),
                "q={} exact={} reported={}",
                q,
                exact,
                reported
            );
            prop_assert!(reported as u64 <= h.max_ns());
        }
    }

    /// `a.merge(&b)` equals one histogram fed the concatenation of both
    /// streams — identical buckets, count, mean, max, and percentiles.
    #[test]
    fn merge_equals_concatenated_stream(
        xs in proptest::collection::vec(0u64..10_000_000_000, 0..200),
        ys in proptest::collection::vec(0u64..10_000_000_000, 0..200),
    ) {
        let mut a = Histogram::new();
        for &s in &xs {
            a.record(s);
        }
        let mut b = Histogram::new();
        for &s in &ys {
            b.record(s);
        }
        a.merge(&b);

        let mut concat = Histogram::new();
        for &s in xs.iter().chain(ys.iter()) {
            concat.record(s);
        }

        prop_assert_eq!(&a, &concat, "merged != concatenated");
        prop_assert_eq!(a.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(a.p50_ns(), concat.p50_ns());
        prop_assert_eq!(a.p99_ns(), concat.p99_ns());
        prop_assert_eq!(a.max_ns(), concat.max_ns());
    }
}
