//! Write-ahead log segments: `wal-<start>.log` files of CRC-framed
//! `(slot, batch)` records.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

use bytes::BytesMut;
use smr_types::Slot;
use smr_wire::{crc32, Batch, Codec, Frame, WireReader, WireWriter, MAX_FRAME_LEN};

use crate::error::StorageError;

const PREFIX: &str = "wal-";
const SUFFIX: &str = ".log";

/// Path of the segment whose first record is `start`.
pub(crate) fn segment_path(dir: &Path, start: Slot) -> PathBuf {
    dir.join(format!("{PREFIX}{:020}{SUFFIX}", start.0))
}

/// WAL segments in `dir`, sorted by start slot.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(Slot, PathBuf)>, StorageError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(start) = name
            .strip_prefix(PREFIX)
            .and_then(|s| s.strip_suffix(SUFFIX))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((Slot(start), entry.path()));
    }
    out.sort();
    Ok(out)
}

/// Appends the framed encoding of one record to `buf`.
pub(crate) fn encode_record(slot: Slot, batch: &Batch, buf: &mut BytesMut) {
    let mut payload = BytesMut::with_capacity(8 + batch.encoded_len());
    let mut w = WireWriter::new(&mut payload);
    w.u64(slot.0);
    batch.encode(&mut payload);
    Frame::encode(&payload, buf);
}

/// Replays one segment into `out`.
///
/// `is_final` marks the newest segment, the only one a crash can leave
/// with a torn or corrupt tail: there the intact prefix is kept and the
/// file truncated back to it. Sealed segments must validate end to end.
pub(crate) fn replay_segment(
    path: &Path,
    is_final: bool,
    out: &mut BTreeMap<u64, Batch>,
) -> Result<(), StorageError> {
    let data = fs::read(path)?;
    let mut off = 0usize;
    let torn = loop {
        let rest = data.len() - off;
        if rest == 0 {
            return Ok(());
        }
        if rest < Frame::HEADER_LEN {
            break format!("{rest}-byte partial header at offset {off}");
        }
        let len =
            u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
        if len > MAX_FRAME_LEN {
            break format!("implausible record length {len} at offset {off}");
        }
        let expected =
            u32::from_le_bytes([data[off + 4], data[off + 5], data[off + 6], data[off + 7]]);
        if rest < Frame::HEADER_LEN + len {
            break format!("truncated record body at offset {off}");
        }
        let payload = &data[off + Frame::HEADER_LEN..off + Frame::HEADER_LEN + len];
        let actual = crc32(payload);
        if actual != expected {
            break format!("record checksum mismatch at offset {off}");
        }
        let mut r = WireReader::new(payload);
        let record = (|| {
            let slot = r.u64()?;
            let batch = Batch::decode_from(&mut r)?;
            r.finish("wal record")?;
            Ok::<_, smr_wire::DecodeError>((slot, batch))
        })();
        match record {
            Ok((slot, batch)) => {
                out.insert(slot, batch);
            }
            // A checksummed payload that does not decode is a bug or
            // hand-editing, not a torn write: always fatal.
            Err(e) => {
                return Err(StorageError::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("undecodable record at offset {off}: {e}"),
                })
            }
        }
        off += Frame::HEADER_LEN + len;
    };
    if !is_final {
        return Err(StorageError::Corrupt {
            path: path.to_path_buf(),
            detail: torn,
        });
    }
    // Crash mid-append: keep the intact prefix, drop the torn tail so the
    // next append does not interleave with garbage.
    OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(off as u64)?;
    Ok(())
}
