//! Durable storage for a replica: an append-only write-ahead log of
//! decided batches plus service snapshot files, both framed with the wire
//! codec's CRC-32 so torn writes are detected on open.
//!
//! # File layout
//!
//! A replica's durability directory contains:
//!
//! * `wal-<start>.log` — append-only segments of [`Frame`]-framed records
//!   (`u64` slot + encoded batch each). A new segment starts at the
//!   snapshot watermark every time a snapshot is installed; older
//!   segments are then pruned.
//! * `snap-<applied_upto>.snap` — one framed payload holding a
//!   [`SnapshotBlob`] (`u64` watermark + `u64` state hash + state bytes),
//!   written to a temporary file and atomically renamed.
//!
//! # Recovery
//!
//! [`Storage::open`] loads the newest snapshot that passes its checksum
//! (falling back to older ones), replays every retained WAL segment, and
//! returns the contiguous tail of records at or above the snapshot
//! watermark. A torn or corrupt tail in the *final* segment is truncated
//! — that is the expected shape of a crash mid-append; corruption in any
//! earlier segment is fatal, because those were sealed by a later
//! rotation and should never be damaged.
//!
//! [`Frame`]: smr_wire::Frame
//! [`SnapshotBlob`]: smr_types::SnapshotBlob

mod error;
mod snaps;
mod wal;

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use bytes::BytesMut;
use smr_types::{Slot, SnapshotBlob};
use smr_wire::Batch;

pub use error::StorageError;

/// Everything [`Storage::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The newest snapshot that passed validation, if any.
    pub snapshot: Option<SnapshotBlob>,
    /// Decided `(slot, batch)` records at or above the snapshot
    /// watermark, contiguous and in slot order: replay these on top of
    /// the restored snapshot to reach the pre-crash state.
    pub tail: Vec<(Slot, Batch)>,
}

impl Recovered {
    /// First slot the replica still has to learn from its peers: the
    /// slot right after the recovered snapshot + tail.
    pub fn resume_at(&self) -> Slot {
        match self.tail.last() {
            Some((slot, _)) => slot.next(),
            None => self
                .snapshot
                .as_ref()
                .map_or(Slot::ZERO, |s| s.applied_upto),
        }
    }
}

/// Handle on a replica's durability directory: appends WAL records and
/// installs snapshots. One instance owns the directory at a time.
#[derive(Debug)]
pub struct Storage {
    dir: PathBuf,
    wal: BufWriter<File>,
    wal_start: Slot,
    scratch: BytesMut,
    /// Bytes appended since the last [`Storage::sync`] — the size of the
    /// group-commit burst the next sync will flush.
    unsynced_bytes: u64,
}

impl Storage {
    /// Opens (creating if needed) the durability directory and recovers
    /// whatever it holds.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption outside the final WAL segment's tail.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Storage, Recovered), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let snapshot = snaps::newest_valid_snapshot(&dir)?;
        let watermark = snapshot.as_ref().map_or(Slot::ZERO, |s| s.applied_upto);

        let segments = wal::list_segments(&dir)?;
        let mut records: BTreeMap<u64, Batch> = BTreeMap::new();
        let last = segments.len().saturating_sub(1);
        for (i, (_, path)) in segments.iter().enumerate() {
            wal::replay_segment(path, i == last, &mut records)?;
        }

        // The usable tail is whatever is contiguous from the watermark;
        // anything below it is covered by the snapshot, anything past a
        // gap is unreachable until the peers re-teach it.
        let mut tail = Vec::new();
        let mut next = watermark;
        while let Some(batch) = records.remove(&next.0) {
            tail.push((next, batch));
            next = next.next();
        }

        // Keep appending to the newest segment, or start one at the
        // resume point for a fresh directory.
        let (wal_start, wal_path) = match segments.last() {
            Some((start, path)) => (*start, path.clone()),
            None => (next, wal::segment_path(&dir, next)),
        };
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&wal_path)?;
        let storage = Storage {
            dir,
            wal: BufWriter::new(file),
            wal_start,
            scratch: BytesMut::new(),
            unsynced_bytes: 0,
        };
        Ok((storage, Recovered { snapshot, tail }))
    }

    /// The durability directory this handle owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// First slot of the active WAL segment.
    pub fn wal_start(&self) -> Slot {
        self.wal_start
    }

    /// Appends one decided record to the WAL, returning its on-disk size
    /// in bytes. Buffered: call [`Storage::sync`] to push a burst to the
    /// operating system.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append(&mut self, slot: Slot, batch: &Batch) -> Result<usize, StorageError> {
        self.scratch.clear();
        wal::encode_record(slot, batch, &mut self.scratch);
        self.wal.write_all(&self.scratch)?;
        self.unsynced_bytes += self.scratch.len() as u64;
        Ok(self.scratch.len())
    }

    /// Flushes buffered WAL records to the operating system, returning
    /// how many appended bytes this group-commit burst covered.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<u64, StorageError> {
        self.wal.flush()?;
        Ok(std::mem::take(&mut self.unsynced_bytes))
    }

    /// Durably installs `blob`: writes the snapshot file (temp + rename +
    /// fsync), rotates the WAL to a fresh segment starting at the
    /// watermark, and prunes every file the snapshot supersedes.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn install_snapshot(&mut self, blob: &SnapshotBlob) -> Result<(), StorageError> {
        snaps::write_snapshot(&self.dir, blob)?;
        self.wal.flush()?;
        self.unsynced_bytes = 0;
        if blob.applied_upto > self.wal_start {
            let path = wal::segment_path(&self.dir, blob.applied_upto);
            let file = OpenOptions::new().append(true).create(true).open(&path)?;
            self.wal = BufWriter::new(file);
            self.wal_start = blob.applied_upto;
        }
        self.prune(blob.applied_upto)?;
        Ok(())
    }

    /// Removes WAL segments and snapshots wholly superseded by a
    /// snapshot at `watermark` (the active segment and the snapshot at
    /// the watermark itself always survive).
    fn prune(&self, watermark: Slot) -> Result<(), StorageError> {
        for (start, path) in wal::list_segments(&self.dir)? {
            if start < self.wal_start && start < watermark {
                fs::remove_file(path)?;
            }
        }
        snaps::prune_below(&self.dir, watermark)?;
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, disposable directory under the system temp dir.
    pub fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("smr-storage-{tag}-{}-{n}", std::process::id()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_types::{ClientId, RequestId, SeqNum};
    use smr_wire::Request;

    fn batch(tag: u64) -> Batch {
        Batch::new(vec![Request::new(
            RequestId::new(ClientId(tag), SeqNum(tag)),
            tag.to_le_bytes().to_vec(),
        )])
    }

    #[test]
    fn fresh_dir_recovers_nothing() {
        let dir = testutil::temp_dir("fresh");
        let (_s, rec) = Storage::open(&dir).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.tail.is_empty());
        assert_eq!(rec.resume_at(), Slot(0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = testutil::temp_dir("roundtrip");
        {
            let (mut s, _) = Storage::open(&dir).unwrap();
            for i in 0..10u64 {
                s.append(Slot(i), &batch(i)).unwrap();
            }
            s.sync().unwrap();
        }
        let (_s, rec) = Storage::open(&dir).unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.tail.len(), 10);
        assert_eq!(rec.tail[7], (Slot(7), batch(7)));
        assert_eq!(rec.resume_at(), Slot(10));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_and_sync_report_byte_counts() {
        let dir = testutil::temp_dir("bytes");
        let (mut s, _) = Storage::open(&dir).unwrap();
        let a = s.append(Slot(0), &batch(0)).unwrap();
        let b = s.append(Slot(1), &batch(1)).unwrap();
        assert!(a > 0 && b > 0, "record sizes reported");
        assert_eq!(s.sync().unwrap(), (a + b) as u64, "burst covers both");
        assert_eq!(s.sync().unwrap(), 0, "burst counter resets after sync");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_rotates_and_prunes_wal() {
        let dir = testutil::temp_dir("rotate");
        {
            let (mut s, _) = Storage::open(&dir).unwrap();
            for i in 0..8u64 {
                s.append(Slot(i), &batch(i)).unwrap();
            }
            s.install_snapshot(&SnapshotBlob {
                applied_upto: Slot(8),
                state_hash: 42,
                state: vec![1, 2, 3],
            })
            .unwrap();
            assert_eq!(s.wal_start(), Slot(8));
            for i in 8..11u64 {
                s.append(Slot(i), &batch(i)).unwrap();
            }
            s.sync().unwrap();
        }
        let (_s, rec) = Storage::open(&dir).unwrap();
        let snap = rec.snapshot.as_ref().expect("snapshot recovered");
        assert_eq!(snap.applied_upto, Slot(8));
        assert_eq!(snap.state_hash, 42);
        assert_eq!(snap.state, vec![1, 2, 3]);
        // Only the post-snapshot tail survives; compacted slots are gone
        // with their pruned segment.
        assert_eq!(
            rec.tail.iter().map(|(s, _)| s.0).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        assert_eq!(rec.resume_at(), Slot(11));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = testutil::temp_dir("torn");
        let wal_path;
        {
            let (mut s, _) = Storage::open(&dir).unwrap();
            for i in 0..5u64 {
                s.append(Slot(i), &batch(i)).unwrap();
            }
            s.sync().unwrap();
            wal_path = wal::segment_path(s.dir(), Slot(0));
        }
        // Simulate a crash mid-append: half a record at the tail.
        let good_len = fs::metadata(&wal_path).unwrap().len();
        let mut bytes = fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&[0x21, 0x07, 0x00]);
        fs::write(&wal_path, &bytes).unwrap();

        let (_s, rec) = Storage::open(&dir).unwrap();
        assert_eq!(rec.tail.len(), 5, "intact prefix recovered");
        assert_eq!(
            fs::metadata(&wal_path).unwrap().len(),
            good_len,
            "torn bytes truncated away"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_record_is_dropped() {
        let dir = testutil::temp_dir("corrupt");
        let wal_path;
        {
            let (mut s, _) = Storage::open(&dir).unwrap();
            for i in 0..5u64 {
                s.append(Slot(i), &batch(i)).unwrap();
            }
            s.sync().unwrap();
            wal_path = wal::segment_path(s.dir(), Slot(0));
        }
        // Flip one byte in the last record's payload: its CRC no longer
        // matches, so recovery must stop before it.
        let mut bytes = fs::read(&wal_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&wal_path, &bytes).unwrap();

        let (_s, rec) = Storage::open(&dir).unwrap();
        assert_eq!(
            rec.tail.iter().map(|(s, _)| s.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "corrupt final record rejected, prefix kept"
        );
        assert_eq!(rec.resume_at(), Slot(4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sealed_segment_is_fatal() {
        let dir = testutil::temp_dir("sealed");
        {
            let (mut s, _) = Storage::open(&dir).unwrap();
            for i in 0..4u64 {
                s.append(Slot(i), &batch(i)).unwrap();
            }
            s.install_snapshot(&SnapshotBlob {
                applied_upto: Slot(2),
                state_hash: 0,
                state: vec![],
            })
            .unwrap();
            s.append(Slot(4), &batch(4)).unwrap();
            s.sync().unwrap();
        }
        // Make wal-2 a sealed (non-final) segment by adding a later empty
        // one, then damage it: recovery must refuse, not silently truncate.
        let sealed = wal::segment_path(&dir, Slot(2));
        let later = wal::segment_path(&dir, Slot(9));
        fs::write(&later, []).unwrap();
        let mut bytes = fs::read(&sealed).unwrap();
        bytes[10] ^= 0xFF;
        fs::write(&sealed, &bytes).unwrap();
        assert!(matches!(
            Storage::open(&dir),
            Err(StorageError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older() {
        let dir = testutil::temp_dir("snapfall");
        {
            let (mut s, _) = Storage::open(&dir).unwrap();
            s.install_snapshot(&SnapshotBlob {
                applied_upto: Slot(4),
                state_hash: 4,
                state: b"old".to_vec(),
            })
            .unwrap();
            // Write the newer snapshot file directly (install_snapshot
            // would prune the old one, defeating the fallback test).
            snaps::write_snapshot(
                &dir,
                &SnapshotBlob {
                    applied_upto: Slot(9),
                    state_hash: 9,
                    state: b"new".to_vec(),
                },
            )
            .unwrap();
        }
        let newest = snaps::snapshot_path(&dir, Slot(9));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let (_s, rec) = Storage::open(&dir).unwrap();
        let snap = rec.snapshot.expect("older snapshot still valid");
        assert_eq!(snap.applied_upto, Slot(4));
        assert_eq!(snap.state, b"old".to_vec());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_gap_stops_replay() {
        let dir = testutil::temp_dir("gap");
        {
            let (mut s, _) = Storage::open(&dir).unwrap();
            s.append(Slot(0), &batch(0)).unwrap();
            s.append(Slot(1), &batch(1)).unwrap();
            s.append(Slot(3), &batch(3)).unwrap(); // hole at 2
            s.sync().unwrap();
        }
        let (_s, rec) = Storage::open(&dir).unwrap();
        assert_eq!(
            rec.tail.iter().map(|(s, _)| s.0).collect::<Vec<_>>(),
            vec![0, 1],
            "replay stops at the first gap"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
