//! Error type of the storage layer.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a storage operation failed.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A sealed file failed validation (bad checksum, malformed record):
    /// the directory cannot be trusted and recovery must not proceed.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt storage file {}: {detail}", path.display())
            }
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}
