//! Snapshot files: `snap-<applied_upto>.snap`, one CRC-framed
//! [`SnapshotBlob`] each, written atomically via temp-file + rename.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::BytesMut;
use smr_types::{Slot, SnapshotBlob};
use smr_wire::{crc32, Frame, WireReader, WireWriter, MAX_FRAME_LEN};

use crate::error::StorageError;

const PREFIX: &str = "snap-";
const SUFFIX: &str = ".snap";
const TMP_NAME: &str = "snap.tmp";

/// Path of the snapshot whose watermark is `applied_upto`.
pub(crate) fn snapshot_path(dir: &Path, applied_upto: Slot) -> PathBuf {
    dir.join(format!("{PREFIX}{:020}{SUFFIX}", applied_upto.0))
}

/// Snapshot files in `dir`, sorted by watermark.
fn list_snapshots(dir: &Path) -> Result<Vec<(Slot, PathBuf)>, StorageError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(upto) = name
            .strip_prefix(PREFIX)
            .and_then(|s| s.strip_suffix(SUFFIX))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((Slot(upto), entry.path()));
    }
    out.sort();
    Ok(out)
}

/// Writes `blob` durably: temp file, fsync, atomic rename.
pub(crate) fn write_snapshot(dir: &Path, blob: &SnapshotBlob) -> Result<(), StorageError> {
    let mut payload = BytesMut::with_capacity(8 + 8 + 4 + blob.state.len());
    let mut w = WireWriter::new(&mut payload);
    w.u64(blob.applied_upto.0);
    w.u64(blob.state_hash);
    w.bytes(&blob.state);
    let mut framed = BytesMut::with_capacity(Frame::HEADER_LEN + payload.len());
    Frame::encode(&payload, &mut framed);

    let tmp = dir.join(TMP_NAME);
    let mut file = File::create(&tmp)?;
    file.write_all(&framed)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, snapshot_path(dir, blob.applied_upto))?;
    // Make the rename itself durable where the platform allows it; a
    // failure here only risks replaying a longer WAL tail after a crash.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads and validates one snapshot file.
fn read_snapshot(path: &Path) -> Result<SnapshotBlob, StorageError> {
    let data = fs::read(path)?;
    let corrupt = |detail: String| StorageError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if data.len() < Frame::HEADER_LEN {
        return Err(corrupt(format!(
            "{}-byte file, no frame header",
            data.len()
        )));
    }
    let len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    if len > MAX_FRAME_LEN || data.len() != Frame::HEADER_LEN + len {
        return Err(corrupt(format!(
            "frame length {len} does not match file size {}",
            data.len()
        )));
    }
    let expected = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    let payload = &data[Frame::HEADER_LEN..];
    let actual = crc32(payload);
    if actual != expected {
        return Err(corrupt("snapshot checksum mismatch".to_string()));
    }
    let mut r = WireReader::new(payload);
    let parse = (|| {
        let applied_upto = Slot(r.u64()?);
        let state_hash = r.u64()?;
        let state = r.bytes()?;
        r.finish("snapshot")?;
        Ok::<_, smr_wire::DecodeError>(SnapshotBlob {
            applied_upto,
            state_hash,
            state,
        })
    })();
    parse.map_err(|e| corrupt(format!("undecodable snapshot: {e}")))
}

/// The newest snapshot in `dir` that passes validation, if any. Invalid
/// newer files are skipped — the interrupted write of a newer snapshot
/// must never mask an older good one.
pub(crate) fn newest_valid_snapshot(dir: &Path) -> Result<Option<SnapshotBlob>, StorageError> {
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        if let Ok(blob) = read_snapshot(&path) {
            return Ok(Some(blob));
        }
    }
    Ok(None)
}

/// Removes snapshots older than `watermark`.
pub(crate) fn prune_below(dir: &Path, watermark: Slot) -> Result<(), StorageError> {
    for (upto, path) in list_snapshots(dir)? {
        if upto < watermark {
            fs::remove_file(path)?;
        }
    }
    Ok(())
}
