//! # smr — high-throughput state machine replication for multi-core systems
//!
//! A Rust reproduction of *Santos & Schiper, "Achieving High-Throughput
//! State Machine Replication in Multi-core Systems" (ICDCS 2013)*: a
//! Paxos-based replicated state machine whose throughput scales with the
//! number of cores, built as a pipeline of single-purpose threads joined
//! by bounded queues (SEDA/Actor hybrid), plus the simulation
//! infrastructure that regenerates every figure and table of the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! one name and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Quick start
//!
//! ```
//! use smr::core::{InProcessCluster, KvService};
//! use smr::types::ClusterConfig;
//!
//! // A 3-replica cluster in this process, over the in-memory fabric.
//! let cluster = InProcessCluster::start(ClusterConfig::new(3), |_id| {
//!     Box::new(KvService::new())
//! });
//! let mut client = cluster.client();
//! client.execute(&KvService::put(b"greeting", b"hello"))?;
//! let reply = client.execute(&KvService::get(b"greeting"))?;
//! assert_eq!(KvService::decode_value(&reply), Some(b"hello".to_vec()));
//! cluster.shutdown();
//! # Ok::<(), smr::types::SmrError>(())
//! ```
//!
//! ## Map of the workspace
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `smr-types` | Ids, configuration (`WND`, `BSZ`, queue bounds), errors |
//! | [`wire`] | `smr-wire` | Message types, binary codec, CRC framing |
//! | [`queue`] | `smr-queue` | Instrumented bounded queues, retransmission timer queue |
//! | [`metrics`] | `smr-metrics` | Per-thread busy/blocked/waiting/other accounting |
//! | [`paxos`] | `smr-paxos` | Pure MultiPaxos state machine (events in, actions out) |
//! | [`net`] | `smr-net` | In-memory (fault-injecting) and TCP transports |
//! | [`storage`] | `smr-storage` | Durable log + snapshot files, CRC-framed, crash recovery |
//! | [`core`] | `smr-core` | **The paper's architecture**: the threaded replica runtime |
//! | [`sim`] | `smr-sim` | Deterministic discrete-event kernel (cores, locks, NICs) |
//! | [`sim_jpaxos`] | `smr-sim-jpaxos` | The evaluation testbed model (Figs. 4–11, Tables I–III) |
//! | [`sim_zab`] | `smr-sim-zab` | The ZooKeeper baseline model (Figs. 1, 12–14) |
//!
//! ## Reproducing the paper
//!
//! Each binary in `smr-bench` regenerates one figure/table, e.g.:
//!
//! ```text
//! cargo run --release -p smr-bench --bin fig04_05_parapluie
//! cargo run --release -p smr-bench --bin fig12_13_14_vs_zookeeper
//! ```
//!
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

pub use smr_core as core;
pub use smr_metrics as metrics;
pub use smr_net as net;
pub use smr_paxos as paxos;
pub use smr_queue as queue;
pub use smr_sim as sim;
pub use smr_sim_jpaxos as sim_jpaxos;
pub use smr_sim_zab as sim_zab;
pub use smr_storage as storage;
pub use smr_types as types;
pub use smr_wire as wire;

/// The items most applications need, in one import.
pub mod prelude {
    pub use smr_core::{
        InProcessCluster, KvService, LockService, NullService, ReplicaBuilder, SequencerService,
        Service, ServiceState, SmrClient, SnapshotService,
    };
    pub use smr_types::{ClientId, ClusterConfig, CompactionPolicy, ReplicaId, SmrError};
}
